//! A deliberately small HTTP/1.1 implementation over `std::net` — request
//! parsing with keep-alive and pipelining, response serialization, percent
//! en/decoding, and JSON error bodies.  No chunked transfer encoding, no
//! TLS: exactly what a local analysis daemon and its bundled client need,
//! with hard limits on head and body size so a misbehaving peer cannot
//! wedge a worker.
//!
//! Connections are persistent by default (HTTP/1.1 semantics): a [`Conn`]
//! owns the per-connection read buffer, so bytes a client pipelines past
//! one request's body are the start of the next request, never dropped.
//! Framing relies on `Content-Length` alone — a request or response body is
//! never delimited by EOF, which is what makes reuse sound.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body (a `.imp` source file).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// How long a worker waits on one blocking I/O step (reading a body chunk,
/// writing a response) before giving up on the connection.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Slice length of the idle wait between keep-alive requests: short enough
/// that a flagged shutdown closes idle connections promptly, long enough to
/// stay off the CPU.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Per-connection persistence limits (`ServerConfig` fields, threaded down
/// by the connection loop).
#[derive(Clone, Copy, Debug)]
pub struct ConnLimits {
    /// Total wall-clock allowed for one request head, counted from its
    /// first byte (the slowloris guard); expiry is a 408 and a close.
    pub head_deadline: Duration,
    /// How long an idle keep-alive connection may wait for the next
    /// request before the server closes it.
    pub idle_timeout: Duration,
}

impl Default for ConnLimits {
    fn default() -> Self {
        ConnLimits {
            head_deadline: IO_TIMEOUT,
            idle_timeout: Duration::from_secs(5),
        }
    }
}

/// A parsed request: method, decoded path, decoded query pairs, lowercased
/// headers, raw body, and whether the client allows connection reuse.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: Vec<(String, String)>,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// `Connection`-header/HTTP-version semantics: `HTTP/1.1` defaults to
    /// keep-alive, `HTTP/1.0` to close, an explicit token overrides, and
    /// `close` wins when both tokens appear.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::bad_request("request body is not valid UTF-8"))
    }
}

/// A request-level failure that maps onto an HTTP status.  Every such
/// failure also ends the connection — after a framing error the buffer
/// position is untrustworthy, so recovery is a fresh connection.
#[derive(Clone, Debug)]
pub struct HttpError {
    pub status: u16,
    pub message: String,
}

impl HttpError {
    pub fn bad_request(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }

    fn timeout(what: &str) -> HttpError {
        HttpError {
            status: 408,
            message: format!("timed out reading the request {what}"),
        }
    }
}

/// What [`Conn::next_request`] yielded.
#[derive(Debug)]
pub enum Next {
    /// A complete, well-formed request.
    Request(Request),
    /// The peer closed (or shutdown was flagged) between requests — close
    /// silently, nothing was in flight.
    Closed,
    /// The idle timeout expired with no request bytes — close silently.
    Idle,
}

/// One server-side connection: the stream plus the read buffer that
/// carries pipelined bytes across requests.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    limits: ConnLimits,
}

impl Conn {
    pub fn new(stream: TcpStream, limits: ConnLimits) -> Conn {
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        Conn {
            stream,
            buf: Vec::with_capacity(1024),
            limits,
        }
    }

    /// The underlying stream, for writing responses.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Reads the next request off the connection, enforcing the size
    /// limits, the head deadline, and the idle timeout.  Answers
    /// `Expect: 100-continue` inline so plain `curl` uploads work.
    ///
    /// `stop` is the server's shutdown flag: while the connection is idle
    /// (no request bytes buffered) a raised flag closes it immediately, so
    /// parked keep-alive connections never stall the drain.
    pub fn next_request(&mut self, stop: &AtomicBool) -> Result<Next, HttpError> {
        let mut chunk = [0u8; 4096];
        let idle_started = Instant::now();
        // The head deadline runs from the first byte of this request —
        // which may already be buffered from the previous read.
        let mut head_started: Option<Instant> = (!self.buf.is_empty()).then(Instant::now);
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError {
                    status: 413,
                    message: "request head exceeds the size limit".to_string(),
                });
            }
            match head_started {
                // Idle between requests: poll in short slices so shutdown
                // and the idle timeout are both observed promptly.
                None => {
                    if stop.load(Ordering::SeqCst) {
                        return Ok(Next::Closed);
                    }
                    if idle_started.elapsed() >= self.limits.idle_timeout {
                        return Ok(Next::Idle);
                    }
                    let _ = self.stream.set_read_timeout(Some(IDLE_POLL));
                    match self.stream.read(&mut chunk) {
                        Ok(0) => return Ok(Next::Closed),
                        Ok(n) => {
                            self.buf.extend_from_slice(&chunk[..n]);
                            head_started = Some(Instant::now());
                        }
                        Err(e) if is_timeout(&e) => {}
                        Err(e) => return Err(read_error(e)),
                    }
                }
                // Mid-head: the rest must arrive within the deadline.
                Some(started) => {
                    let remaining = self
                        .limits
                        .head_deadline
                        .checked_sub(started.elapsed())
                        .filter(|r| !r.is_zero());
                    let Some(remaining) = remaining else {
                        return Err(HttpError::timeout("head"));
                    };
                    let _ = self.stream.set_read_timeout(Some(remaining));
                    match self.stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(HttpError::bad_request(
                                "connection closed before the request head was complete",
                            ))
                        }
                        Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                        Err(e) if is_timeout(&e) => return Err(HttpError::timeout("head")),
                        Err(e) => return Err(read_error(e)),
                    }
                }
            }
        };

        let head = parse_head(&self.buf[..head_end])?;
        if head.expect_continue {
            let _ = self.stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
        }

        // Consume the head; what follows is body bytes and, past them,
        // possibly the next pipelined request.
        self.buf.drain(..head_end + 4);
        let _ = self.stream.set_read_timeout(Some(IO_TIMEOUT));
        while self.buf.len() < head.content_length {
            let n = self.stream.read(&mut chunk).map_err(|e| {
                if is_timeout(&e) {
                    HttpError::timeout("body")
                } else {
                    read_error(e)
                }
            })?;
            if n == 0 {
                return Err(HttpError::bad_request(
                    "connection closed before the request body was complete",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let leftover = self.buf.split_off(head.content_length);
        let body = std::mem::replace(&mut self.buf, leftover);

        let (raw_path, raw_query) = match head.target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (head.target.as_str(), ""),
        };
        Ok(Next::Request(Request {
            method: head.method,
            path: decode_component(raw_path),
            query: parse_query(raw_query),
            headers: head.headers,
            body,
            keep_alive: head.keep_alive,
        }))
    }
}

/// The parsed request line and headers of one request.
#[derive(Debug)]
struct Head {
    method: String,
    target: String,
    headers: Vec<(String, String)>,
    content_length: usize,
    keep_alive: bool,
    expect_continue: bool,
}

/// Parses the raw head bytes (everything before the blank line).
fn parse_head(raw: &[u8]) -> Result<Head, HttpError> {
    let head = std::str::from_utf8(raw)
        .map_err(|_| HttpError::bad_request("request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("request line has no target"))?
        .to_string();
    let version = match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => v,
        _ => return Err(HttpError::bad_request("only HTTP/1.x is supported")),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::bad_request(format!("malformed header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::bad_request(
            "chunked transfer encoding is not supported; send Content-Length",
        ));
    }
    // All Content-Length occurrences must agree: resolving duplicates by
    // "first wins" would silently read the wrong number of body bytes when
    // a proxy or a confused client stacks conflicting values (a classic
    // request-smuggling vector) — reject the request instead.
    let mut content_length: Option<usize> = None;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        let parsed: usize = v
            .parse()
            .map_err(|_| HttpError::bad_request(format!("invalid Content-Length `{v}`")))?;
        match content_length {
            Some(existing) if existing != parsed => {
                return Err(HttpError::bad_request(
                    "conflicting duplicate Content-Length headers",
                ));
            }
            _ => content_length = Some(parsed),
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: format!("request body of {content_length} bytes exceeds the limit"),
        });
    }
    let expect_continue = headers
        .iter()
        .any(|(k, v)| k == "expect" && v.eq_ignore_ascii_case("100-continue"));
    Ok(Head {
        method,
        target,
        keep_alive: connection_keep_alive(version, &headers),
        headers,
        content_length,
        expect_continue,
    })
}

/// HTTP/1.1 persistence semantics: 1.1 defaults to keep-alive, 1.0 to
/// close; explicit `Connection` tokens override, with `close` winning when
/// both appear.
fn connection_keep_alive(version: &str, headers: &[(String, String)]) -> bool {
    let mut close = false;
    let mut keep = false;
    for (_, v) in headers.iter().filter(|(k, _)| k == "connection") {
        for token in v.split(',') {
            let token = token.trim();
            if token.eq_ignore_ascii_case("close") {
                close = true;
            } else if token.eq_ignore_ascii_case("keep-alive") {
                keep = true;
            }
        }
    }
    if close {
        false
    } else if keep {
        true
    } else {
        version != "HTTP/1.0"
    }
}

/// A response about to be serialized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub body: String,
    pub content_type: &'static str,
    /// Extra response headers, e.g. `Allow` on a 405.
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response with the given pre-rendered body.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            headers: Vec::new(),
        }
    }

    /// The uniform JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, format!("{{\"error\": {}}}\n", json_string(message)))
    }

    /// Adds an extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Serializes onto the stream.  `Content-Length` framing always; the
    /// `Connection` header tells the client whether the server will keep
    /// the connection open for the next request.
    pub fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        // One write per response: a separate small body write after the
        // head would sit in the Nagle buffer until the head is ACKed,
        // stalling every keep-alive round trip by a delayed-ACK interval.
        head.push_str(&self.body);
        stream.write_all(head.as_bytes())?;
        stream.flush()
    }
}

/// Standard reason phrase of the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders a JSON string literal (quotes and control characters escaped).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Percent-encodes one query component (RFC 3986 unreserved set passes).
pub fn encode_query_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'/' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decodes percent escapes (and `+` as space) in one query component.
fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits and decodes a raw query string into key/value pairs.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (decode_component(k), decode_component(v)),
            None => (decode_component(part), String::new()),
        })
        .collect()
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn read_error(e: std::io::Error) -> HttpError {
    let status = if is_timeout(&e) { 408 } else { 400 };
    HttpError {
        status,
        message: format!("failed reading request: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_components_round_trip() {
        for s in [
            "examples/programs/hanoi.imp",
            "name with spaces & symbols = 100%",
            "plain",
            "",
        ] {
            let enc = encode_query_component(s);
            assert_eq!(decode_component(&enc), s, "via {enc}");
        }
    }

    #[test]
    fn query_strings_parse_into_pairs() {
        let q = parse_query("file=a%2Fb.imp&jobs=4&flag");
        assert_eq!(
            q,
            vec![
                ("file".to_string(), "a/b.imp".to_string()),
                ("jobs".to_string(), "4".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn error_responses_are_json_envelopes() {
        let r = Response::error(400, "oops: \"x\"");
        assert_eq!(r.status, 400);
        assert_eq!(r.body, "{\"error\": \"oops: \\\"x\\\"\"}\n");
    }

    fn head_of(raw: &str) -> Head {
        parse_head(raw.as_bytes()).expect("well-formed head")
    }

    #[test]
    fn persistence_follows_version_and_connection_tokens() {
        // HTTP/1.1 defaults to keep-alive, 1.0 to close.
        assert!(head_of("GET / HTTP/1.1").keep_alive);
        assert!(!head_of("GET / HTTP/1.0").keep_alive);
        // Explicit tokens override either default.
        assert!(!head_of("GET / HTTP/1.1\r\nConnection: close").keep_alive);
        assert!(head_of("GET / HTTP/1.0\r\nConnection: keep-alive").keep_alive);
        // Token lists are honored, case-insensitively; close wins.
        assert!(!head_of("GET / HTTP/1.1\r\nConnection: Keep-Alive, Close").keep_alive);
        assert!(head_of("GET / HTTP/1.0\r\nConnection: TE, Keep-Alive").keep_alive);
    }

    #[test]
    fn heads_reject_conflicting_content_lengths() {
        let err =
            parse_head(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("conflicting"), "{}", err.message);
        // Equal duplicates are tolerated.
        let head = parse_head(b"POST / HTTP/1.1\r\nContent-Length: 2\r\ncontent-length: 2")
            .expect("equal duplicates");
        assert_eq!(head.content_length, 2);
    }

    #[test]
    fn oversized_body_announcements_are_413() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}", MAX_BODY_BYTES + 1);
        assert_eq!(parse_head(raw.as_bytes()).unwrap_err().status, 413);
    }

    #[test]
    fn responses_carry_extra_headers_and_connection_framing() {
        // Serialize via a real socket pair: write_to needs a TcpStream.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut raw = String::new();
            s.read_to_string(&mut raw).expect("read");
            raw
        });
        let (mut stream, _) = listener.accept().expect("accept");
        Response::error(405, "use POST")
            .with_header("Allow", "POST")
            .write_to(&mut stream, false)
            .expect("write");
        drop(stream);
        let raw = client.join().expect("client thread");
        assert!(
            raw.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"),
            "{raw}"
        );
        assert!(raw.contains("Allow: POST\r\n"), "{raw}");
        assert!(raw.contains("Connection: close\r\n"), "{raw}");
    }
}
