//! The HTTP/1.1 client behind `chora request` and the server-mode
//! benchmarks: a [`Client`] owns one keep-alive connection to the daemon
//! and reuses it across requests, with `Content-Length`-framed response
//! reads (never EOF-delimited, so reuse is sound) and — for idempotent
//! requests only — a single transparent reconnect when a previously-reused
//! connection turns out to have been closed by the server (idle timeout,
//! request cap).

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How long the client waits for the server to produce a response (analyses
/// of large programs are allowed to take a while).
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// Connection and retry policy of a [`Client`].
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection.  `None` = the OS default
    /// (minutes) — fine for a CLI talking to its own daemon, far too long
    /// for a cache tier probing a possibly-dead peer.
    pub connect_timeout: Option<Duration>,
    /// Bound on each read/write once connected.
    pub io_timeout: Duration,
    /// Pause before the single stale-connection retry, giving a restarting
    /// server a beat to come back before the request is abandoned.
    pub retry_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: None,
            io_timeout: CLIENT_TIMEOUT,
            retry_backoff: Duration::from_millis(25),
        }
    }
}

/// Whether a request may be transparently resent after a connection-level
/// failure.  `GET`s never mutate.  Summary uploads (`PUT
/// /v1/summaries/{key}`) are content-addressed — replaying one writes the
/// same bytes under the same key — so they are idempotent too.  Everything
/// else (`POST /v1/analyze` runs an analysis, `POST /v1/shutdown` stops the
/// daemon) must reach the server at most once.
fn is_idempotent(method: &str, path_and_query: &str) -> bool {
    method == "GET" || (method == "PUT" && path_and_query.starts_with("/v1/summaries/"))
}

/// A keep-alive HTTP client bound to one daemon address.
///
/// The connection is opened lazily on the first request and reused until
/// the server answers `Connection: close`, an error occurs, or [`close`]
/// is called.  Dropping the client closes the connection.
///
/// [`close`]: Client::close
pub struct Client {
    addr: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
    /// Bytes read past the previous response's body (none in practice —
    /// the client never pipelines — but framing stays correct if a server
    /// ever sends early).
    leftover: Vec<u8>,
}

impl Client {
    /// A client for the daemon at `addr` (e.g. `127.0.0.1:7557`).  No
    /// connection is made until the first request.
    pub fn new(addr: impl Into<String>) -> Client {
        Client::with_config(addr, ClientConfig::default())
    }

    /// A client with explicit connection and retry policy.
    pub fn with_config(addr: impl Into<String>, config: ClientConfig) -> Client {
        Client {
            addr: addr.into(),
            config,
            stream: None,
            leftover: Vec::new(),
        }
    }

    /// The daemon address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// `GET` without a body; returns `(status, body)`.
    ///
    /// `path_and_query` must already be percent-encoded (see
    /// [`crate::http::encode_query_component`]).
    pub fn get(&mut self, path_and_query: &str) -> std::io::Result<(u16, String)> {
        self.send("GET", path_and_query, None)
    }

    /// `POST` with a body; returns `(status, body)`.
    pub fn post(&mut self, path_and_query: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.send("POST", path_and_query, Some(body))
    }

    /// `PUT` with a body; returns `(status, body)`.
    pub fn put(&mut self, path_and_query: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.send("PUT", path_and_query, Some(body))
    }

    /// Closes the connection (the next request reconnects).
    pub fn close(&mut self) {
        self.stream = None;
        self.leftover.clear();
    }

    /// Sends one request on the (re)used connection.  When a *reused*
    /// connection fails before any response byte arrives — the server
    /// closed it between requests (idle timeout, request cap) — an
    /// *idempotent* request (`GET`, or a content-addressed summary `PUT`)
    /// is retried once on a fresh connection after a short backoff.
    /// Non-idempotent requests are never resent: a `POST` whose connection
    /// died mid-flight may already have run on the server.
    pub fn send(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let reused = self.stream.is_some();
        match self.try_send(method, path_and_query, body) {
            Err(e)
                if reused && is_stale_connection(&e) && is_idempotent(method, path_and_query) =>
            {
                self.close();
                if !self.config.retry_backoff.is_zero() {
                    std::thread::sleep(self.config.retry_backoff);
                }
                self.try_send(method, path_and_query, body)
            }
            other => other,
        }
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        match self.config.connect_timeout {
            None => TcpStream::connect(&self.addr),
            Some(limit) => {
                let target = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("`{}` resolved to no address", self.addr),
                    )
                })?;
                TcpStream::connect_timeout(&target, limit)
            }
        }
    }

    fn try_send(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        if self.stream.is_none() {
            let stream = self.connect()?;
            stream.set_read_timeout(Some(self.config.io_timeout))?;
            stream.set_write_timeout(Some(self.config.io_timeout))?;
            // Nagle would hold small writes until the previous segment is
            // ACKed; combined with delayed ACKs that stalls every
            // request/response turn on a keep-alive connection by ~40ms.
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
            self.leftover.clear();
        }
        let result = (|| {
            let stream = self.stream.as_mut().expect("connected above");
            let body = body.unwrap_or("");
            // One write per request: head and body in a single segment, so
            // the request never straddles an ACK boundary.
            let mut request = format!(
                "{method} {path_and_query} HTTP/1.1\r\nHost: {}\r\nContent-Type: text/plain\r\n\
                 Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
                self.addr,
                body.len()
            );
            request.push_str(body);
            stream.write_all(request.as_bytes())?;
            stream.flush()?;
            read_response(stream, &mut self.leftover)
        })();
        match result {
            Ok((status, body, close)) => {
                if close {
                    self.close();
                }
                Ok((status, body))
            }
            Err(e) => {
                // After any error the framing position is unknown: drop
                // the connection rather than misparse the next response.
                self.close();
                Err(e)
            }
        }
    }
}

/// Whether an error on a reused connection means "the server already
/// closed it" — the only case [`Client::send`] retries.
fn is_stale_connection(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    )
}

/// Sends one request on a throwaway connection and returns
/// `(status, body)`.
#[deprecated(note = "use `Client` and reuse the connection across requests")]
pub fn http_request(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    Client::new(addr).send(method, path_and_query, body)
}

/// Reads one `Content-Length`-framed response off the stream, carrying
/// unconsumed bytes across calls in `buf`.  Returns
/// `(status, body, close)` where `close` reports a `Connection: close`
/// from the server (or EOF-delimited framing, which implies it).
///
/// Interim 1xx responses (`100 Continue`) are skipped.  A body that is
/// not valid UTF-8 is an error — it must never be silently mangled by a
/// lossy conversion.
fn read_response<R: Read>(
    stream: &mut R,
    buf: &mut Vec<u8>,
) -> std::io::Result<(u16, String, bool)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..head_end])
                .map_err(|_| bad("response head is not UTF-8"))?;
            let mut lines = head.split("\r\n");
            let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
            let status: u16 = status_line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(&format!("malformed status line `{status_line}`")))?;
            let mut content_length: Option<usize> = None;
            let mut close = false;
            for line in lines {
                let Some((name, value)) = line.split_once(':') else {
                    continue;
                };
                let name = name.trim();
                let value = value.trim();
                if name.eq_ignore_ascii_case("connection")
                    && value
                        .split(',')
                        .any(|t| t.trim().eq_ignore_ascii_case("close"))
                {
                    close = true;
                }
                if !name.eq_ignore_ascii_case("content-length") {
                    continue;
                }
                let value: usize = value
                    .parse()
                    .map_err(|_| bad(&format!("invalid Content-Length `{value}`")))?;
                match content_length {
                    Some(existing) if existing != value => {
                        return Err(bad("conflicting Content-Length headers in response"));
                    }
                    _ => content_length = Some(value),
                }
            }
            // Skip interim 1xx responses (the server sends `100 Continue`
            // when the request carried `Expect`).
            if (100..200).contains(&status) {
                buf.drain(..head_end + 4);
                continue;
            }
            let body_start = head_end + 4;
            let body = match content_length {
                Some(expected) => {
                    while buf.len() < body_start + expected {
                        let n = stream.read(&mut chunk)?;
                        if n == 0 {
                            return Err(bad(&format!(
                                "response body truncated: got {} of {expected} bytes",
                                buf.len() - body_start
                            )));
                        }
                        buf.extend_from_slice(&chunk[..n]);
                    }
                    let rest = buf.split_off(body_start + expected);
                    let body = buf[body_start..].to_vec();
                    *buf = rest;
                    body
                }
                None => {
                    // No Content-Length: EOF-delimited (`Connection:
                    // close` framing); the connection cannot be reused.
                    close = true;
                    loop {
                        let n = stream.read(&mut chunk)?;
                        if n == 0 {
                            break;
                        }
                        buf.extend_from_slice(&chunk[..n]);
                    }
                    let body = buf[body_start..].to_vec();
                    buf.clear();
                    body
                }
            };
            let body =
                String::from_utf8(body).map_err(|_| bad("response body is not valid UTF-8"))?;
            return Ok((status, body, close));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a response arrived",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> std::io::Result<(u16, String, bool)> {
        let mut cursor = raw;
        let mut buf = Vec::new();
        read_response(&mut cursor, &mut buf)
    }

    #[test]
    fn responses_parse_status_and_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi";
        let (status, body, close) = parse(raw).unwrap();
        assert_eq!((status, body.as_str()), (200, "hi"));
        assert!(!close, "Content-Length framing keeps the connection");
    }

    #[test]
    fn connection_close_is_reported() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nhi";
        assert!(parse(raw).unwrap().2);
    }

    #[test]
    fn interim_100_continue_is_skipped() {
        let raw = b"HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 400 Bad Request\r\n\
                    Content-Length: 15\r\n\r\n{\"error\": \"x\"}\n";
        let (status, body, _) = parse(raw).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("error"));
    }

    #[test]
    fn content_length_bounds_the_body_and_keeps_the_rest() {
        // Bytes past Content-Length stay buffered for the next response.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhiHTTP/1.1 200 OK\r\n\
                    Content-Length: 3\r\n\r\nbye";
        let mut cursor: &[u8] = raw;
        let mut buf = Vec::new();
        let (_, first, _) = read_response(&mut cursor, &mut buf).unwrap();
        assert_eq!(first, "hi");
        let (_, second, _) = read_response(&mut cursor, &mut buf).unwrap();
        assert_eq!(second, "bye");
        // A short body is a truncation error, not a silent success.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhi";
        let err = parse(raw).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        // Case-insensitive header name, equal duplicates tolerated.
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\nCONTENT-LENGTH: 2\r\n\r\nhiX";
        assert_eq!(parse(raw).unwrap().1, "hi");
        // Conflicting duplicates are an error.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhix";
        let err = parse(raw).unwrap_err();
        assert!(err.to_string().contains("conflicting"), "{err}");
        // Unparseable value.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: zz\r\n\r\nhi";
        assert!(parse(raw).is_err());
        // Without the header, Connection: close framing reads to EOF.
        let raw = b"HTTP/1.1 200 OK\r\n\r\neverything here";
        let (status, body, close) = parse(raw).unwrap();
        assert_eq!((status, body.as_str()), (200, "everything here"));
        assert!(close, "EOF framing implies close");
    }

    #[test]
    fn non_utf8_bodies_are_an_error_not_mangled() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n\xff\xfe";
        let err = parse(raw).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }

    #[test]
    fn only_gets_and_summary_puts_are_retry_safe() {
        assert!(is_idempotent("GET", "/v1/stats"));
        assert!(is_idempotent("GET", "/v1/summaries/00ff"));
        assert!(is_idempotent("PUT", "/v1/summaries/00ff?src=aa"));
        assert!(!is_idempotent("PUT", "/v1/analyze"));
        assert!(!is_idempotent("POST", "/v1/analyze"));
        assert!(!is_idempotent("POST", "/v1/shutdown"));
        assert!(!is_idempotent("POST", "/v1/summaries/00ff"));
    }

    #[test]
    fn stale_connection_errors_are_classified() {
        use std::io::{Error, ErrorKind};
        assert!(is_stale_connection(&Error::new(
            ErrorKind::UnexpectedEof,
            "eof"
        )));
        assert!(is_stale_connection(&Error::new(
            ErrorKind::BrokenPipe,
            "pipe"
        )));
        assert!(!is_stale_connection(&Error::new(
            ErrorKind::InvalidData,
            "bad"
        )));
    }
}
