//! A one-shot HTTP/1.1 client, just big enough for `chora request` and the
//! server-mode benchmarks: connect, send one request, read one
//! `Connection: close` response.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long the client waits for the server to produce a response (analyses
/// of large programs are allowed to take a while).
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// Sends one request and returns `(status, body)`.
///
/// `path_and_query` must already be percent-encoded (see
/// [`crate::http::encode_query_component`]).
pub fn http_request(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path_and_query} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: text/plain\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Splits a raw `Connection: close` response into status and body.
///
/// When the head carries `Content-Length`, the header is authoritative: any
/// trailing bytes past it are discarded (they are not part of the body) and
/// a body shorter than advertised is a truncation error, not silently
/// accepted.  Without the header, everything up to EOF is the body
/// (`Connection: close` framing).  A body that is not valid UTF-8 is an
/// error — it must never be silently mangled by a lossy conversion.
fn parse_response(raw: &[u8]) -> std::io::Result<(u16, String)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    // Skip interim 1xx responses (the server sends `100 Continue` when the
    // request carried `Expect`).
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(&format!("malformed status line `{status_line}`")))?;
    if (100..200).contains(&status) {
        return parse_response(&raw[head_end + 4..]);
    }
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if !name.trim().eq_ignore_ascii_case("content-length") {
            continue;
        }
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| bad(&format!("invalid Content-Length `{}`", value.trim())))?;
        match content_length {
            Some(existing) if existing != value => {
                return Err(bad("conflicting Content-Length headers in response"));
            }
            _ => content_length = Some(value),
        }
    }
    let mut body = &raw[head_end + 4..];
    if let Some(expected) = content_length {
        if body.len() < expected {
            return Err(bad(&format!(
                "response body truncated: got {} of {expected} bytes",
                body.len()
            )));
        }
        body = &body[..expected];
    }
    let body = std::str::from_utf8(body)
        .map_err(|_| bad("response body is not valid UTF-8"))?
        .to_string();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_parse_status_and_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi";
        assert_eq!(parse_response(raw).unwrap(), (200, "hi".to_string()));
    }

    #[test]
    fn interim_100_continue_is_skipped() {
        let raw =
            b"HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 400 Bad Request\r\n\r\n{\"error\": \"x\"}\n";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("error"));
    }

    #[test]
    fn content_length_bounds_the_body() {
        // Trailing bytes past Content-Length are not part of the body.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi-trailing-garbage";
        assert_eq!(parse_response(raw).unwrap(), (200, "hi".to_string()));
        // A short body is a truncation error, not a silent success.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhi";
        let err = parse_response(raw).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        // Case-insensitive header name, equal duplicates tolerated.
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\nCONTENT-LENGTH: 2\r\n\r\nhiX";
        assert_eq!(parse_response(raw).unwrap(), (200, "hi".to_string()));
        // Conflicting duplicates are an error.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhix";
        let err = parse_response(raw).unwrap_err();
        assert!(err.to_string().contains("conflicting"), "{err}");
        // Unparseable value.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: zz\r\n\r\nhi";
        assert!(parse_response(raw).is_err());
        // Without the header, Connection: close framing reads to EOF.
        let raw = b"HTTP/1.1 200 OK\r\n\r\neverything here";
        assert_eq!(
            parse_response(raw).unwrap(),
            (200, "everything here".to_string())
        );
    }

    #[test]
    fn non_utf8_bodies_are_an_error_not_mangled() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n\xff\xfe";
        let err = parse_response(raw).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }
}
