//! A one-shot HTTP/1.1 client, just big enough for `chora request` and the
//! server-mode benchmarks: connect, send one request, read one
//! `Connection: close` response.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long the client waits for the server to produce a response (analyses
/// of large programs are allowed to take a while).
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// Sends one request and returns `(status, body)`.
///
/// `path_and_query` must already be percent-encoded (see
/// [`crate::http::encode_query_component`]).
pub fn http_request(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path_and_query} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: text/plain\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Splits a raw `Connection: close` response into status and body.
fn parse_response(raw: &[u8]) -> std::io::Result<(u16, String)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    // Skip interim 1xx responses (the server sends `100 Continue` when the
    // request carried `Expect`).
    let status_line = head
        .split("\r\n")
        .next()
        .ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(&format!("malformed status line `{status_line}`")))?;
    if (100..200).contains(&status) {
        return parse_response(&raw[head_end + 4..]);
    }
    let body = String::from_utf8_lossy(&raw[head_end + 4..]).into_owned();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_parse_status_and_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi";
        assert_eq!(parse_response(raw).unwrap(), (200, "hi".to_string()));
    }

    #[test]
    fn interim_100_continue_is_skipped() {
        let raw =
            b"HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 400 Bad Request\r\n\r\n{\"error\": \"x\"}\n";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("error"));
    }
}
