//! Connection-lifecycle tests over raw sockets: pipelining, split
//! segments, explicit `Connection: close`, idle timeout, the slowloris
//! head deadline, and the per-connection request cap.  A stub backend
//! keeps the requests instant — these tests exercise the transport, not
//! the analysis.

use chora_server::{spawn, AnalysisBackend, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Echoes the source length, so responses are cheap and deterministic.
struct StubBackend;

impl AnalysisBackend for StubBackend {
    fn analyze(&self, _query: &[(String, String)], source: &str) -> Result<String, String> {
        Ok(format!("{{\"len\": {}}}\n", source.len()))
    }

    fn complexity(&self, _query: &[(String, String)], source: &str) -> Result<String, String> {
        Ok(format!("{{\"len\": {}}}\n", source.len()))
    }

    fn cache_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

fn daemon(config: ServerConfig) -> ServerHandle {
    spawn(config, Arc::new(StubBackend)).expect("spawn server")
}

fn quiet_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        quiet: true,
        ..ServerConfig::default()
    }
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

fn post(body: &str, extra_headers: &str) -> String {
    format!(
        "POST /v1/analyze HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n{extra_headers}\r\n{body}",
        body.len()
    )
}

/// Reads exactly one `Content-Length`-framed response off the stream,
/// returning `(status, connection_header, body)`.
fn read_one_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (u16, String, String) {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "connection closed before a full response arrived");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("UTF-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let header = |name: &str| {
        head.lines()
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                k.trim()
                    .eq_ignore_ascii_case(name)
                    .then(|| v.trim().to_string())
            })
            .unwrap_or_default()
    };
    let content_length: usize = header("content-length").parse().expect("Content-Length");
    let connection = header("connection");
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let rest = buf.split_off(body_start + content_length);
    let body = String::from_utf8(buf[body_start..].to_vec()).expect("UTF-8 body");
    *buf = rest;
    (status, connection, body)
}

/// Reads until EOF; the server must actively close.
fn expect_eof(stream: &mut TcpStream) {
    let mut chunk = [0u8; 256];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) => panic!("expected a clean close, got {e}"),
        }
    }
}

#[test]
fn two_requests_in_one_tcp_segment_get_two_responses() {
    let handle = daemon(quiet_config());
    let mut stream = connect(&handle);
    // Both requests land in a single write — the second must not be
    // discarded with the first body's trailing bytes.
    let pipelined = format!("{}{}", post("aa", ""), post("bbbb", ""));
    stream.write_all(pipelined.as_bytes()).expect("write");
    let mut buf = Vec::new();
    let (status, conn, body) = read_one_response(&mut stream, &mut buf);
    assert_eq!(
        (status, conn.as_str(), body.as_str()),
        (200, "keep-alive", "{\"len\": 2}\n")
    );
    let (status, _, body) = read_one_response(&mut stream, &mut buf);
    assert_eq!((status, body.as_str()), (200, "{\"len\": 4}\n"));
    handle.shutdown();
}

#[test]
fn a_request_split_across_segments_is_reassembled() {
    let handle = daemon(quiet_config());
    let mut stream = connect(&handle);
    let request = post("hello", "");
    // Dribble the request: head split mid-line, body in two pieces.
    for piece in [
        &request[..10],
        &request[10..40],
        &request[40..request.len() - 3],
    ] {
        stream.write_all(piece.as_bytes()).expect("write piece");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(30));
    }
    stream
        .write_all(&request.as_bytes()[request.len() - 3..])
        .expect("write tail");
    let mut buf = Vec::new();
    let (status, _, body) = read_one_response(&mut stream, &mut buf);
    assert_eq!((status, body.as_str()), (200, "{\"len\": 5}\n"));
    handle.shutdown();
}

#[test]
fn keep_alive_then_connection_close_ends_the_connection() {
    let handle = daemon(quiet_config());
    let mut stream = connect(&handle);
    let mut buf = Vec::new();
    stream.write_all(post("x", "").as_bytes()).expect("write");
    let (status, conn, _) = read_one_response(&mut stream, &mut buf);
    assert_eq!((status, conn.as_str()), (200, "keep-alive"));
    stream
        .write_all(post("y", "Connection: close\r\n").as_bytes())
        .expect("write");
    let (status, conn, _) = read_one_response(&mut stream, &mut buf);
    assert_eq!((status, conn.as_str()), (200, "close"));
    expect_eof(&mut stream);
    handle.shutdown();
}

#[test]
fn http_1_0_without_keep_alive_closes_after_one_response() {
    let handle = daemon(quiet_config());
    let mut stream = connect(&handle);
    let request = "POST /v1/analyze HTTP/1.0\r\nHost: t\r\nContent-Length: 1\r\n\r\nz";
    stream.write_all(request.as_bytes()).expect("write");
    let mut buf = Vec::new();
    let (status, conn, _) = read_one_response(&mut stream, &mut buf);
    assert_eq!((status, conn.as_str()), (200, "close"));
    expect_eof(&mut stream);
    handle.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_disconnected() {
    let handle = daemon(ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..quiet_config()
    });
    let mut stream = connect(&handle);
    let mut buf = Vec::new();
    stream.write_all(post("x", "").as_bytes()).expect("write");
    let (status, conn, _) = read_one_response(&mut stream, &mut buf);
    assert_eq!((status, conn.as_str()), (200, "keep-alive"));
    // Say nothing; the server must hang up on its own (silently — an idle
    // close between requests is not an error response).
    expect_eof(&mut stream);
    handle.shutdown();
}

#[test]
fn a_stalled_head_is_cut_off_with_408() {
    let handle = daemon(ServerConfig {
        head_deadline: Duration::from_millis(200),
        ..quiet_config()
    });
    let mut stream = connect(&handle);
    // Start a head, then stall forever (slowloris).
    stream
        .write_all(b"POST /v1/analyze HTTP/1.1\r\nHos")
        .expect("write partial head");
    stream.flush().expect("flush");
    let mut buf = Vec::new();
    let (status, conn, body) = read_one_response(&mut stream, &mut buf);
    assert_eq!(status, 408, "{body}");
    assert_eq!(conn, "close");
    assert!(body.contains("timed out"), "{body}");
    expect_eof(&mut stream);
    handle.shutdown();
}

#[test]
fn the_request_cap_closes_the_connection_after_n_requests() {
    let handle = daemon(ServerConfig {
        max_requests_per_conn: 2,
        ..quiet_config()
    });
    let mut stream = connect(&handle);
    let pipelined = format!("{}{}{}", post("a", ""), post("bb", ""), post("ccc", ""));
    stream.write_all(pipelined.as_bytes()).expect("write");
    let mut buf = Vec::new();
    let (status, conn, _) = read_one_response(&mut stream, &mut buf);
    assert_eq!((status, conn.as_str()), (200, "keep-alive"));
    let (status, conn, _) = read_one_response(&mut stream, &mut buf);
    assert_eq!((status, conn.as_str()), (200, "close"), "cap reached");
    expect_eof(&mut stream);
    handle.shutdown();
}

#[test]
fn the_client_reuses_its_connection_and_survives_a_server_side_close() {
    let handle = daemon(ServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..quiet_config()
    });
    let addr = handle.addr().to_string();
    let mut client = chora_server::client::Client::new(&addr);
    let (status, body) = client.post("/v1/analyze", "abc").expect("first request");
    assert_eq!((status, body.as_str()), (200, "{\"len\": 3}\n"));
    // Wait past the idle timeout so the server drops the parked
    // connection; an idempotent request must transparently reconnect.
    std::thread::sleep(Duration::from_millis(400));
    let (status, _) = client.get("/v1/healthz").expect("GET after idle close");
    assert_eq!(status, 200);
    // A POST that hits the same race is NOT resent (the server might
    // already have run it): the error surfaces to the caller, and an
    // explicit retry lands on a fresh connection.
    std::thread::sleep(Duration::from_millis(400));
    let err = client
        .post("/v1/analyze", "abcd")
        .expect_err("stale connection must not silently replay a POST");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
        ),
        "{err}"
    );
    let (status, body) = client.post("/v1/analyze", "abcd").expect("explicit retry");
    assert_eq!((status, body.as_str()), (200, "{\"len\": 4}\n"));
    handle.shutdown();
}

#[test]
fn batch_is_declined_by_backends_without_support() {
    let handle = daemon(quiet_config());
    let mut client = chora_server::client::Client::new(handle.addr().to_string());
    let (status, body) = client.post("/v1/batch", "[]").expect("batch request");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("does not support"), "{body}");
    handle.shutdown();
}

#[test]
fn wrong_method_gets_allow_header_over_the_wire() {
    let handle = daemon(quiet_config());
    let mut stream = connect(&handle);
    stream
        .write_all(b"GET /v1/analyze HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write");
    let mut chunk = [0u8; 4096];
    let mut raw = Vec::new();
    loop {
        if raw.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0);
        raw.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&raw);
    assert!(head.starts_with("HTTP/1.1 405 "), "{head}");
    assert!(head.contains("Allow: POST\r\n"), "{head}");
    handle.shutdown();
}
