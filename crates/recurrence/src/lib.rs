//! # chora-recurrence
//!
//! The recurrence-solving substrate of CHORA: C-finite recurrences and
//! *stratified systems of polynomial recurrences* (Defn. 3.2 of the paper),
//! solved into exponential-polynomial closed forms ([`chora_expr::ExpPoly`]).
//!
//! Height-based recurrence analysis (§4.1) extracts inequations of the form
//! `b_k(h+1) ≤ p_k(b_1(h), ..., b_n(h))`; after Alg. 3 selects a stratified
//! subset and takes the maximal solution, the resulting equation system is
//! handed to [`RecurrenceSystem::solve`], which returns the bounding
//! functions `b_k(h)` in closed form.
//!
//! ```
//! use chora_recurrence::RecurrenceSystem;
//! use chora_expr::{Polynomial, Symbol};
//! use chora_numeric::rat;
//!
//! // The Tower-of-Hanoi cost recurrence b(h+1) = 2·b(h) + 1 with b(1) = 0.
//! let mut sys = RecurrenceSystem::new();
//! let b_h = Polynomial::var(Symbol::bound_at_h(1));
//! sys.add_equation(1, &b_h.scale(&rat(2)) + &Polynomial::constant(rat(1)));
//! let solved = sys.solve().unwrap();
//! // b(h) = 2^(h-1) - 1
//! assert_eq!(solved[0].closed_form.eval_int(5), rat(15));
//! ```

mod solver;
mod symbolic;

pub use solver::{
    strongly_connected_components, RecEquation, RecurrenceSystem, SolveError, SolvedBound,
};
pub use symbolic::{height_symbol, SymbolicInitialSolution};
