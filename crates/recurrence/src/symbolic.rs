//! Closed forms with a *symbolic* initial condition.
//!
//! Two-region analysis (§4.3) solves the upper-region recurrences with a
//! symbolic initial-condition parameter `c^U_k` that is later instantiated
//! with the lower-region bounding function evaluated at height `H − M`.
//!
//! Because the recurrences are linear, the solution depends affinely on the
//! initial value: `b(h, c) = base(h) + c · sensitivity(h)`.  This module
//! recovers that affine decomposition by solving the same system twice (with
//! initial values 0 and 1) and taking the difference.

use crate::solver::{RecurrenceSystem, SolveError};
use chora_expr::{ExpPoly, Symbol, Term};
use chora_numeric::BigRational;
use std::collections::BTreeMap;

/// An affine-in-the-initial-condition closed form
/// `b(h, c) = base(h) + c·sensitivity(h)`.
#[derive(Clone, Debug)]
pub struct SymbolicInitialSolution {
    /// The index of the bounding function.
    pub index: usize,
    /// The closed form with initial value 0.
    pub base: ExpPoly,
    /// The coefficient of the (symbolic) initial value.
    pub sensitivity: ExpPoly,
    /// Whether both underlying solves were exact.
    pub exact: bool,
}

impl SymbolicInitialSolution {
    /// Evaluates the closed form at integer height `h` with a concrete
    /// initial value.
    pub fn eval_int(&self, h: i64, initial: &BigRational) -> BigRational {
        let b = self.base.eval_int(h);
        let s = self.sensitivity.eval_int(h);
        &b + &(&s * initial)
    }

    /// Renders the closed form as a [`Term`], substituting `height_term` for
    /// the height parameter and `initial_term` for the symbolic initial
    /// value.
    pub fn to_term(&self, height_term: &Term, initial_term: &Term) -> Term {
        let base = self.base.to_term_with_param(height_term);
        let sens = self.sensitivity.to_term_with_param(height_term);
        Term::add(vec![base, Term::mul(vec![sens, initial_term.clone()])])
    }

    /// Solves the system once per bounding function with symbolic initial
    /// conditions for *all* of its functions: the `k`-th returned solution is
    /// affine in the initial value of `b_k` (other initial values are as set
    /// in the system).
    ///
    /// # Errors
    ///
    /// Propagates any [`SolveError`] from the underlying solver.
    pub fn solve_affine(
        system: &RecurrenceSystem,
    ) -> Result<Vec<SymbolicInitialSolution>, SolveError> {
        let indices: Vec<usize> = system.equations().iter().map(|e| e.index).collect();
        let zero_solution = system.solve()?;
        let by_index: BTreeMap<usize, _> =
            zero_solution.iter().map(|s| (s.index, s.clone())).collect();
        let mut out = Vec::new();
        for &k in &indices {
            // Re-solve with b_k(1) = 1.
            let mut bumped = system.clone();
            bumped.set_initial(k, BigRational::one());
            let one_solution = bumped.solve()?;
            let one_k = one_solution
                .iter()
                .find(|s| s.index == k)
                .expect("index solved");
            let zero_k = &by_index[&k];
            let sensitivity = one_k.closed_form.add(&zero_k.closed_form.neg());
            out.push(SymbolicInitialSolution {
                index: k,
                base: zero_k.closed_form.clone(),
                sensitivity,
                exact: zero_k.exact && one_k.exact,
            });
        }
        Ok(out)
    }
}

/// Convenience: the height symbol used by all closed forms in this crate.
pub fn height_symbol() -> Symbol {
    Symbol::height()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_expr::Polynomial;
    use chora_numeric::rat;

    fn b_at_h(k: usize) -> Polynomial {
        Polynomial::var(Symbol::bound_at_h(k))
    }
    fn c(v: i64) -> Polynomial {
        Polynomial::constant(rat(v))
    }

    #[test]
    fn affine_decomposition_of_differ_upper_region() {
        // §4.3: upper-region recurrences for `differ`:
        //   b1(h'+1) = b1(h') - 1   and   b2(h'+1) = b2(h') + 1
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, &b_at_h(1) - &c(1));
        sys.add_equation(2, &b_at_h(2) + &c(1));
        let affine = SymbolicInitialSolution::solve_affine(&sys).unwrap();
        let b1 = affine.iter().find(|s| s.index == 1).unwrap();
        let b2 = affine.iter().find(|s| s.index == 2).unwrap();
        // b1(h, c) = c - (h - 1),  b2(h, c) = c + (h - 1)
        assert_eq!(b1.eval_int(4, &rat(10)), rat(7));
        assert_eq!(b2.eval_int(4, &rat(10)), rat(13));
        assert_eq!(b1.eval_int(1, &rat(3)), rat(3));
        assert!(b1.exact && b2.exact);
    }

    #[test]
    fn affine_decomposition_of_geometric() {
        // b(h+1) = 2 b(h) + 1  with symbolic initial value c:
        // b(h, c) = (c + 1)·2^(h-1) - 1
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, &b_at_h(1).scale(&rat(2)) + &c(1));
        let affine = SymbolicInitialSolution::solve_affine(&sys).unwrap();
        let b = &affine[0];
        assert_eq!(b.eval_int(1, &rat(5)), rat(5));
        assert_eq!(b.eval_int(3, &rat(5)), rat(23));
        assert_eq!(b.eval_int(4, &rat(0)), rat(7));
    }

    #[test]
    fn to_term_substitutes_both_parameters() {
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, &b_at_h(1) + &c(1));
        let affine = SymbolicInitialSolution::solve_affine(&sys).unwrap();
        let t = affine[0].to_term(&Term::int(6), &Term::int(10));
        // b(6, 10) = 10 + 5
        assert_eq!(t.as_constant(), Some(rat(15)));
    }
}
