//! Solving stratified systems of polynomial recurrences (Defn. 3.2).
//!
//! The input is a system of equations
//!
//! ```text
//!     b_k(h+1) = p_k( b_1(h), ..., b_n(h) )
//! ```
//!
//! where each `p_k` is a polynomial with rational coefficients, the
//! dependency structure is *stratified* (non-linear dependencies point
//! strictly downwards), and initial values `b_k(1)` are given.  The output is
//! an exponential-polynomial closed form for each `b_k`.
//!
//! The solver processes strongly connected components of the dependency
//! graph bottom-up.  Each SCC is a linear system `b(h+1) = M·b(h) + g(h)`
//! whose inhomogeneous part `g` is an exponential-polynomial (obtained by
//! substituting the closed forms of lower strata).  The closed form of such a
//! system lies in the span of `{ h^j · λ^h }` where `λ` ranges over the
//! eigenvalues of `M` and the bases of `g` (with degree bumps for repeated
//! eigenvalues and resonance), so the solver:
//!
//! 1. computes the characteristic polynomial of `M` and its rational roots,
//! 2. forms that basis,
//! 3. iterates the recurrence to obtain exact sample values,
//! 4. solves for the basis coefficients by exact linear algebra, and
//! 5. verifies the fit on additional sample points.
//!
//! When the characteristic polynomial does not split over ℚ the solver falls
//! back to a sound scalar majorant (`‖M‖_∞` as the base), which preserves the
//! upper-bound role the closed forms play in CHORA.

use chora_expr::{ExpPoly, Monomial, Polynomial, Symbol};
use chora_numeric::linalg::{rational_roots, Matrix};
use chora_numeric::BigRational;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One recurrence equation `b_index(h+1) = rhs`, where `rhs` is a polynomial
/// over the symbols `Symbol::bound_at_h(j)`.
#[derive(Clone, Debug)]
pub struct RecEquation {
    /// The index `k` of the bounding function being defined.
    pub index: usize,
    /// The right-hand side over `{ b_j(h) }`.
    pub rhs: Polynomial,
}

/// A stratified system of polynomial recurrences plus initial values.
#[derive(Clone, Debug, Default)]
pub struct RecurrenceSystem {
    equations: Vec<RecEquation>,
    initial: BTreeMap<usize, BigRational>,
}

/// A solved bounding function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolvedBound {
    /// The index `k` of the bounding function.
    pub index: usize,
    /// Closed form for `b_k(h)`, valid for all `h ≥ 1`.
    pub closed_form: ExpPoly,
    /// `true` when the closed form is the exact solution of the recurrence;
    /// `false` when it is a sound upper bound (fallback paths).
    pub exact: bool,
}

/// Why the solver could not produce closed forms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// A bounding function is used but never defined (stratification
    /// criterion 2 violated).
    UndefinedBound(usize),
    /// A bounding function is defined more than once (criterion 1 violated).
    DuplicateDefinition(usize),
    /// A non-linear dependency within a strongly connected component
    /// (criterion 3 violated).
    NonStratified(usize),
    /// The closed-form fit could not be verified (should not happen for
    /// well-formed stratified systems; reported rather than returning an
    /// unsound result).
    FitFailed(usize),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::UndefinedBound(k) => {
                write!(f, "bounding function b_{k} is used but never defined")
            }
            SolveError::DuplicateDefinition(k) => {
                write!(f, "bounding function b_{k} is defined twice")
            }
            SolveError::NonStratified(k) => {
                write!(f, "non-linear dependency on b_{k} within its own stratum")
            }
            SolveError::FitFailed(k) => write!(f, "could not verify a closed form for b_{k}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl RecurrenceSystem {
    /// Creates an empty system.
    pub fn new() -> RecurrenceSystem {
        RecurrenceSystem::default()
    }

    /// Adds the equation `b_index(h+1) = rhs`.
    pub fn add_equation(&mut self, index: usize, rhs: Polynomial) {
        self.equations.push(RecEquation { index, rhs });
    }

    /// Sets the initial value `b_index(1)` (defaults to zero, the value used
    /// by height-based recurrence analysis).
    pub fn set_initial(&mut self, index: usize, value: BigRational) {
        self.initial.insert(index, value);
    }

    /// The equations of the system.
    pub fn equations(&self) -> &[RecEquation] {
        &self.equations
    }

    /// Number of equations.
    pub fn len(&self) -> usize {
        self.equations.len()
    }

    /// Whether the system has no equations.
    pub fn is_empty(&self) -> bool {
        self.equations.is_empty()
    }

    fn initial_value(&self, k: usize) -> BigRational {
        self.initial
            .get(&k)
            .cloned()
            .unwrap_or_else(BigRational::zero)
    }

    /// Solves the system, producing a closed form for every defined bounding
    /// function.
    ///
    /// # Errors
    ///
    /// Returns a [`SolveError`] when the system is not stratified or a closed
    /// form cannot be verified.
    pub fn solve(&self) -> Result<Vec<SolvedBound>, SolveError> {
        let _span = chora_telemetry::trace::span("solve", "recurrence_solve");
        let h = Symbol::height();
        // Index the equations and validate criteria 1 and 2.
        let mut eq_of: BTreeMap<usize, &RecEquation> = BTreeMap::new();
        for eq in &self.equations {
            if eq_of.insert(eq.index, eq).is_some() {
                return Err(SolveError::DuplicateDefinition(eq.index));
            }
        }
        let mut used: BTreeSet<usize> = BTreeSet::new();
        for eq in &self.equations {
            for s in eq.rhs.symbols() {
                if let Some(j) = s.as_bound_at_h() {
                    used.insert(j);
                }
            }
        }
        for j in &used {
            if !eq_of.contains_key(j) {
                return Err(SolveError::UndefinedBound(*j));
            }
        }
        // Dependency graph on equation indices.
        let indices: Vec<usize> = eq_of.keys().copied().collect();
        let deps: BTreeMap<usize, BTreeSet<usize>> = indices
            .iter()
            .map(|&k| {
                let mut d = BTreeSet::new();
                for s in eq_of[&k].rhs.symbols() {
                    if let Some(j) = s.as_bound_at_h() {
                        d.insert(j);
                    }
                }
                (k, d)
            })
            .collect();
        let sccs = strongly_connected_components(&indices, &deps);
        // Process SCCs bottom-up (they come out in reverse topological order
        // of the dependency graph: dependencies first).
        let mut solved: BTreeMap<usize, ExpPoly> = BTreeMap::new();
        let mut results: Vec<SolvedBound> = Vec::new();
        for scc in sccs {
            let bounds = self.solve_scc(&scc, &eq_of, &solved, &h)?;
            for b in bounds {
                solved.insert(b.index, b.closed_form.clone());
                results.push(b);
            }
        }
        results.sort_by_key(|b| b.index);
        Ok(results)
    }

    /// Solves one strongly connected component given the closed forms of all
    /// lower strata.
    fn solve_scc(
        &self,
        scc: &[usize],
        eq_of: &BTreeMap<usize, &RecEquation>,
        solved: &BTreeMap<usize, ExpPoly>,
        h: &Symbol,
    ) -> Result<Vec<SolvedBound>, SolveError> {
        let members: BTreeSet<usize> = scc.iter().copied().collect();
        // Split each RHS into: linear part over SCC members (matrix row) and
        // the remainder (which may mention lower-strata bounds, possibly
        // non-linearly) which becomes the inhomogeneous part.
        let n = scc.len();
        let mut matrix = Matrix::zero(n, n);
        let mut inhomogeneous: Vec<ExpPoly> = Vec::with_capacity(n);
        for (row, &k) in scc.iter().enumerate() {
            let rhs = &eq_of[&k].rhs;
            let mut rest = Polynomial::zero();
            for (m, c) in rhs.terms() {
                // Does this monomial mention an SCC member?
                let scc_vars: Vec<usize> = m
                    .symbols()
                    .iter()
                    .filter_map(|s| s.as_bound_at_h())
                    .filter(|j| members.contains(j))
                    .collect();
                if scc_vars.is_empty() {
                    rest = &rest + &Polynomial::term(c.clone(), m.clone());
                    continue;
                }
                // Linear occurrence of exactly one member, to the first power,
                // with no other bound symbols in the monomial.
                if m.degree() != 1 {
                    return Err(SolveError::NonStratified(k));
                }
                let j = scc_vars[0];
                let col = scc.iter().position(|&x| x == j).expect("member of scc");
                let updated = &matrix[(row, col)] + c;
                matrix[(row, col)] = updated;
            }
            // Substitute lower-strata closed forms into the remainder.
            inhomogeneous.push(substitute_closed_forms(&rest, solved, h)?);
        }
        let initial: Vec<BigRational> = scc.iter().map(|&k| self.initial_value(k)).collect();
        let closed = solve_linear_system(&matrix, &inhomogeneous, &initial, h)
            .ok_or(SolveError::FitFailed(scc[0]))?;
        Ok(scc
            .iter()
            .zip(closed)
            .map(|(&k, (cf, exact))| SolvedBound {
                index: k,
                closed_form: cf,
                exact,
            })
            .collect())
    }
}

/// Substitutes already-solved closed forms for `b_j(h)` symbols in `p`
/// (products of closed forms handle the polynomial dependencies on lower
/// strata), leaving a function of `h` only.
fn substitute_closed_forms(
    p: &Polynomial,
    solved: &BTreeMap<usize, ExpPoly>,
    h: &Symbol,
) -> Result<ExpPoly, SolveError> {
    let mut out = ExpPoly::zero(h);
    for (m, c) in p.terms() {
        let mut factor = ExpPoly::constant(c.clone(), h);
        for (s, e) in m.powers() {
            let base = if let Some(j) = s.as_bound_at_h() {
                solved
                    .get(&j)
                    .cloned()
                    .ok_or(SolveError::UndefinedBound(j))?
            } else if s == h {
                ExpPoly::param_var(h)
            } else {
                // A foreign symbol (e.g. a program variable) cannot appear in
                // a well-formed recurrence right-hand side.
                return Err(SolveError::UndefinedBound(usize::MAX));
            };
            for _ in 0..e {
                factor = factor.mul(&base);
            }
        }
        out = out.add(&factor);
    }
    Ok(out)
}

/// Solves `b(h+1) = M·b(h) + g(h)`, `b(1) = initial`, returning for each
/// component a closed form valid for `h ≥ 1` and an exactness flag.
fn solve_linear_system(
    m: &Matrix,
    g: &[ExpPoly],
    initial: &[BigRational],
    h: &Symbol,
) -> Option<Vec<(ExpPoly, bool)>> {
    let n = m.rows();
    // Eigenvalue basis.
    let char_coeffs = m.char_poly();
    let (roots, fully_factored) = rational_roots(&char_coeffs);
    if !fully_factored {
        return solve_by_majorant(m, g, initial, h);
    }
    // base -> maximum polynomial degree needed
    let mut degrees: BTreeMap<BigRational, u32> = BTreeMap::new();
    let bump = |map: &mut BTreeMap<BigRational, u32>, base: &BigRational, deg: u32| {
        let e = map.entry(base.clone()).or_insert(0);
        *e = (*e).max(deg);
    };
    // Roots of multiplicity m contribute h^0..h^(m-1); count multiplicities.
    let mut mult: BTreeMap<BigRational, u32> = BTreeMap::new();
    for r in &roots {
        if r.is_zero() {
            continue; // nilpotent part: transient, handled by sampling h ≥ n
        }
        *mult.entry(r.clone()).or_insert(0) += 1;
    }
    for (r, k) in &mult {
        bump(&mut degrees, r, k - 1);
    }
    // Inhomogeneous bases: degree + multiplicity-of-that-base-as-eigenvalue
    // (+1 safety margin is unnecessary: resonance is covered by adding the
    // multiplicity).
    for gi in g {
        for (base, poly) in gi.terms() {
            let extra = mult.get(base).copied().unwrap_or(0);
            bump(&mut degrees, base, poly.degree() + extra);
        }
    }
    // Always include the constant function so initial transients can be
    // absorbed when possible.
    bump(&mut degrees, &BigRational::one(), 0);
    // Basis functions (base, power).
    let mut basis: Vec<(BigRational, u32)> = Vec::new();
    for (base, maxdeg) in &degrees {
        for k in 0..=*maxdeg {
            basis.push((base.clone(), k));
        }
    }
    let b_len = basis.len();
    // Sample the recurrence: values b(1), b(2), ... exactly.
    // Fit on points h = n+1 .. n+b_len (past any nilpotent transient),
    // verify on the next few, and separately check the early points.
    let fit_start = (n as i64) + 1;
    let needed = fit_start as usize + b_len + 4;
    let samples = iterate_system(m, g, initial, needed);
    let eval_basis = |base: &BigRational, pow: u32, at: i64| -> BigRational {
        let hp = BigRational::from(at).pow(pow as i32);
        &hp * &base.pow(at as i32)
    };
    let mut out = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // `comp` indexes the inner dimension of `samples`
    for comp in 0..n {
        // Build the fit system.
        let rows: Vec<Vec<BigRational>> = (0..b_len)
            .map(|i| {
                let at = fit_start + i as i64;
                basis.iter().map(|(b, p)| eval_basis(b, *p, at)).collect()
            })
            .collect();
        let rhs: Vec<BigRational> = (0..b_len)
            .map(|i| samples[(fit_start + i as i64 - 1) as usize][comp].clone())
            .collect();
        let coeffs = Matrix::from_rows(rows).solve(&rhs)?;
        let mut cf = ExpPoly::zero(h);
        for ((base, pow), c) in basis.iter().zip(&coeffs) {
            if c.is_zero() {
                continue;
            }
            let poly = Polynomial::term(c.clone(), Monomial::from_powers([(*h, *pow)]));
            cf = cf.add(&ExpPoly::exp_poly_term(base.clone(), poly, h));
        }
        // Verify on later samples.
        let mut exact = true;
        for at in fit_start + b_len as i64..(needed as i64) {
            if cf.eval_int(at) != samples[(at - 1) as usize][comp] {
                exact = false;
                break;
            }
        }
        if !exact {
            return solve_by_majorant(m, g, initial, h);
        }
        // Check the early (possibly transient) points: exact or at least an
        // upper bound.
        for at in 1..fit_start {
            let predicted = cf.eval_int(at);
            let actual = &samples[(at - 1) as usize][comp];
            if &predicted < actual {
                // Not even an upper bound: lift the whole closed form by the
                // worst shortfall so it dominates the early points.
                let shortfall = actual - &predicted;
                cf = cf.add(&ExpPoly::constant(shortfall, h));
                exact = false;
            } else if &predicted != actual {
                exact = false;
            }
        }
        out.push((cf, exact));
    }
    Some(out)
}

/// Sound fallback when the characteristic polynomial does not split over ℚ:
/// majorize the vector recurrence by the scalar recurrence
/// `s(h+1) = ‖M‖_∞ · s(h) + max_i ĝ_i(h)` with non-negative envelopes.
fn solve_by_majorant(
    m: &Matrix,
    g: &[ExpPoly],
    initial: &[BigRational],
    h: &Symbol,
) -> Option<Vec<(ExpPoly, bool)>> {
    let n = m.rows();
    // ‖M‖_∞ over absolute values.
    let mut norm = BigRational::zero();
    for i in 0..n {
        let mut row = BigRational::zero();
        for j in 0..n {
            row += &m[(i, j)].abs();
        }
        norm = norm.max(row);
    }
    // Envelope of the inhomogeneous parts, summed (a coarse but sound
    // majorant of the per-component maximum).
    let mut g_env = ExpPoly::zero(h);
    for gi in g {
        g_env = g_env.add(&gi.upper_envelope());
    }
    let init_max = initial
        .iter()
        .map(|v| v.abs())
        .fold(BigRational::zero(), |a, b| a.max(b));
    if norm.is_zero() {
        // s(h+1) = ĝ(h): bound by ĝ(h) + ĝ(h-1)-style shift; the envelope is
        // non-decreasing in its syntactic form, so ĝ(h) + init is sound.
        let cf = g_env.add(&ExpPoly::constant(init_max, h));
        return Some(vec![(cf, false); n]);
    }
    // Solve the scalar majorant exactly (1x1 system with rational eigenvalue).
    let scalar_m = Matrix::from_rows(vec![vec![norm]]);
    let scalar = solve_linear_system(&scalar_m, std::slice::from_ref(&g_env), &[init_max], h)?;
    let (cf, _) = scalar.into_iter().next()?;
    Some(vec![(cf, false); n])
}

/// Iterates `b(h+1) = M·b(h) + g(h)` from `b(1) = initial`, returning
/// `[b(1), b(2), ..., b(count)]`.
fn iterate_system(
    m: &Matrix,
    g: &[ExpPoly],
    initial: &[BigRational],
    count: usize,
) -> Vec<Vec<BigRational>> {
    let mut out = Vec::with_capacity(count);
    let mut current: Vec<BigRational> = initial.to_vec();
    out.push(current.clone());
    for step in 1..count {
        let at = step as i64; // current height h
        let mut next = m.mul_vec(&current);
        for (i, gi) in g.iter().enumerate() {
            next[i] += &gi.eval_int(at);
        }
        current = next;
        out.push(current.clone());
    }
    out
}

/// Tarjan-style strongly connected components, returned in reverse
/// topological order (callees/dependencies before callers/dependents).
pub fn strongly_connected_components(
    nodes: &[usize],
    deps: &BTreeMap<usize, BTreeSet<usize>>,
) -> Vec<Vec<usize>> {
    struct State<'a> {
        deps: &'a BTreeMap<usize, BTreeSet<usize>>,
        index: BTreeMap<usize, usize>,
        lowlink: BTreeMap<usize, usize>,
        on_stack: BTreeSet<usize>,
        stack: Vec<usize>,
        counter: usize,
        output: Vec<Vec<usize>>,
    }
    fn visit(v: usize, st: &mut State<'_>) {
        st.index.insert(v, st.counter);
        st.lowlink.insert(v, st.counter);
        st.counter += 1;
        st.stack.push(v);
        st.on_stack.insert(v);
        let successors: Vec<usize> = st
            .deps
            .get(&v)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for w in successors {
            if !st.deps.contains_key(&w) {
                continue;
            }
            if !st.index.contains_key(&w) {
                visit(w, st);
                let wl = st.lowlink[&w];
                let vl = st.lowlink[&v];
                st.lowlink.insert(v, vl.min(wl));
            } else if st.on_stack.contains(&w) {
                let wi = st.index[&w];
                let vl = st.lowlink[&v];
                st.lowlink.insert(v, vl.min(wi));
            }
        }
        if st.lowlink[&v] == st.index[&v] {
            let mut comp = Vec::new();
            while let Some(w) = st.stack.pop() {
                st.on_stack.remove(&w);
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            st.output.push(comp);
        }
    }
    let mut st = State {
        deps,
        index: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        counter: 0,
        output: Vec::new(),
    };
    for &v in nodes {
        if !st.index.contains_key(&v) {
            visit(v, &mut st);
        }
    }
    st.output
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_numeric::{rat, ratio};

    fn b_at_h(k: usize) -> Polynomial {
        Polynomial::var(Symbol::bound_at_h(k))
    }
    fn c(v: i64) -> Polynomial {
        Polynomial::constant(rat(v))
    }

    /// Brute-force iteration of a system for comparison.
    fn iterate(sys: &RecurrenceSystem, upto: i64) -> BTreeMap<usize, Vec<BigRational>> {
        let mut values: BTreeMap<usize, Vec<BigRational>> = BTreeMap::new();
        let indices: Vec<usize> = sys.equations().iter().map(|e| e.index).collect();
        for &k in &indices {
            values.insert(
                k,
                vec![sys
                    .initial
                    .get(&k)
                    .cloned()
                    .unwrap_or_else(BigRational::zero)],
            );
        }
        for step in 1..upto {
            let mut env = BTreeMap::new();
            for &k in &indices {
                env.insert(
                    Symbol::bound_at_h(k),
                    values[&k][(step - 1) as usize].clone(),
                );
            }
            for eq in sys.equations() {
                let next = eq.rhs.eval(&env).expect("all bound symbols in env");
                values.get_mut(&eq.index).unwrap().push(next);
            }
        }
        values
    }

    fn check_against_iteration(sys: &RecurrenceSystem, upto: i64) {
        let solved = sys.solve().expect("solvable");
        let reference = iterate(sys, upto);
        for s in &solved {
            for h in 1..upto {
                let actual = &reference[&s.index][(h - 1) as usize];
                let predicted = s.closed_form.eval_int(h);
                if s.exact {
                    assert_eq!(&predicted, actual, "b_{} at h={} (exact)", s.index, h);
                } else {
                    assert!(
                        &predicted >= actual,
                        "b_{} at h={}: {} < {}",
                        s.index,
                        h,
                        predicted,
                        actual
                    );
                }
            }
        }
    }

    #[test]
    fn hanoi_recurrence() {
        // b(h+1) = 2 b(h) + 1, b(1) = 0  =>  b(h) = 2^(h-1) - 1
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, &b_at_h(1).scale(&rat(2)) + &c(1));
        let solved = sys.solve().unwrap();
        assert_eq!(solved.len(), 1);
        assert!(solved[0].exact);
        assert_eq!(solved[0].closed_form.eval_int(1), rat(0));
        assert_eq!(solved[0].closed_form.eval_int(5), rat(15));
        assert_eq!(solved[0].closed_form.dominant_base_abs(), Some(rat(2)));
        check_against_iteration(&sys, 12);
    }

    #[test]
    fn subset_sum_recurrence() {
        // The paper's §2 recurrence: b2(h+1) = 2 b2(h) + 2, b2(1) = 0
        // =>  b2(h) = 2^h - 2, i.e. nTicks' - nTicks - 1 ≤ 2^h - 2.
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(2, &b_at_h(2).scale(&rat(2)) + &c(2));
        let solved = sys.solve().unwrap();
        assert_eq!(solved[0].closed_form.eval_int(3), rat(6));
        assert_eq!(solved[0].closed_form.eval_int(10), rat(1022));
        check_against_iteration(&sys, 12);
    }

    #[test]
    fn linear_growth() {
        // b(h+1) = b(h) + 1, b(1) = 0  =>  b(h) = h - 1
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, &b_at_h(1) + &c(1));
        let solved = sys.solve().unwrap();
        assert!(solved[0].exact);
        assert_eq!(solved[0].closed_form.eval_int(7), rat(6));
        assert!(solved[0].closed_form.as_polynomial().is_some());
        check_against_iteration(&sys, 10);
    }

    #[test]
    fn quadratic_growth_stratified() {
        // b1(h+1) = b1(h) + 1          => b1(h) = h - 1
        // b2(h+1) = b2(h) + b1(h)      => b2(h) = (h-1)(h-2)/2
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, &b_at_h(1) + &c(1));
        sys.add_equation(2, &b_at_h(2) + &b_at_h(1));
        let solved = sys.solve().unwrap();
        let b2 = solved.iter().find(|s| s.index == 2).unwrap();
        assert!(b2.exact);
        assert_eq!(b2.closed_form.eval_int(5), rat(6));
        assert_eq!(b2.closed_form.eval_int(10), rat(36));
        check_against_iteration(&sys, 12);
    }

    #[test]
    fn mergesort_resonance() {
        // b_cost(h+1) = 2 b_cost(h) + 2^h  (linear work at each level)
        // => b_cost(h) = (h-1)·2^(h-1)
        let mut sys = RecurrenceSystem::new();
        // Model the 2^h inhomogeneous part through a lower-stratum bound:
        // b1(h+1) = 2 b1(h) + 1, b1(1) = 1  => b1(h) = 2^(h-1)... use init.
        sys.add_equation(1, b_at_h(1).scale(&rat(2)));
        sys.set_initial(1, rat(1)); // b1(h) = 2^(h-1)
        sys.add_equation(2, &b_at_h(2).scale(&rat(2)) + &b_at_h(1));
        let solved = sys.solve().unwrap();
        let b2 = solved.iter().find(|s| s.index == 2).unwrap();
        // b2: 0, 1, 4, 12, 32 ... = (h-1)·2^(h-2)
        assert_eq!(b2.closed_form.eval_int(2), rat(1));
        assert_eq!(b2.closed_form.eval_int(3), rat(4));
        assert_eq!(b2.closed_form.eval_int(5), rat(32));
        assert!(b2.exact);
        // dominant term h·2^h with degree 1
        assert_eq!(b2.closed_form.dominant_base_abs(), Some(rat(2)));
        assert_eq!(b2.closed_form.dominant_degree(), 1);
        check_against_iteration(&sys, 14);
    }

    #[test]
    fn strassen_like() {
        // b2(h+1) = 7 b2(h) + 4^h ;   4^h modelled by b1(h+1) = 4 b1(h), b1(1)=4
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, b_at_h(1).scale(&rat(4)));
        sys.set_initial(1, rat(4));
        sys.add_equation(2, &b_at_h(2).scale(&rat(7)) + &b_at_h(1));
        let solved = sys.solve().unwrap();
        let b2 = solved.iter().find(|s| s.index == 2).unwrap();
        assert_eq!(b2.closed_form.dominant_base_abs(), Some(rat(7)));
        check_against_iteration(&sys, 10);
    }

    #[test]
    fn mutual_recursion_matrix() {
        // Ex. 4.1: [b1; b2](h+1) = [[0,18],[2,0]]·[b1; b2](h) + [17; 1]
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, &b_at_h(2).scale(&rat(18)) + &c(17));
        sys.add_equation(2, &b_at_h(1).scale(&rat(2)) + &c(1));
        let solved = sys.solve().unwrap();
        assert_eq!(solved.len(), 2);
        for s in &solved {
            // Eigenvalues ±6: dominant base magnitude 6.
            assert_eq!(
                s.closed_form.dominant_base_abs().map(|b| b.abs()),
                Some(rat(6))
            );
        }
        check_against_iteration(&sys, 10);
    }

    #[test]
    fn fractional_decay() {
        // b(h+1) = b(h)/2 + 1, b(1)=0 => converges to 2: b(h) = 2 - 2^(2-h)
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, &b_at_h(1).scale(&ratio(1, 2)) + &c(1));
        let solved = sys.solve().unwrap();
        assert!(solved[0].exact);
        assert_eq!(solved[0].closed_form.eval_int(3), ratio(3, 2));
        check_against_iteration(&sys, 10);
    }

    #[test]
    fn paper_example_3_3_strata() {
        // A two-strata system in the spirit of Ex. 3.3:
        //   x(h+1) = 2 x(h),            x(1) = 1
        //   w(h+1) = w(h) + 13 x(h) + 1, w(1) = 0
        //   y(h+1) = y(h) + x(h)^2 + 1,  y(1) = 0   (non-linear in lower stratum)
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, b_at_h(1).scale(&rat(2)));
        sys.set_initial(1, rat(1));
        sys.add_equation(2, &(&b_at_h(2) + &b_at_h(1).scale(&rat(13))) + &c(1));
        sys.add_equation(3, &(&b_at_h(3) + &(&b_at_h(1) * &b_at_h(1))) + &c(1));
        check_against_iteration(&sys, 12);
        let solved = sys.solve().unwrap();
        let y = solved.iter().find(|s| s.index == 3).unwrap();
        // x(h)^2 = 4^(h-1): y grows like 4^h/3.
        assert_eq!(y.closed_form.dominant_base_abs(), Some(rat(4)));
    }

    #[test]
    fn non_stratified_rejected() {
        // b1(h+1) = b1(h)^2 is not C-finite: the solver must reject it.
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, &b_at_h(1) * &b_at_h(1));
        assert_eq!(sys.solve(), Err(SolveError::NonStratified(1)));
    }

    #[test]
    fn undefined_bound_rejected() {
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, &b_at_h(1) + &b_at_h(9));
        assert_eq!(sys.solve(), Err(SolveError::UndefinedBound(9)));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, c(1));
        sys.add_equation(1, c(2));
        assert_eq!(sys.solve(), Err(SolveError::DuplicateDefinition(1)));
    }

    #[test]
    fn irrational_eigenvalues_fall_back_to_majorant() {
        // [[1,2],[1,1]] has eigenvalues 1 ± sqrt(2): not rational.
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, &(&b_at_h(1) + &b_at_h(2).scale(&rat(2))) + &c(1));
        sys.add_equation(2, &(&b_at_h(1) + &b_at_h(2)) + &c(1));
        let solved = sys.solve().unwrap();
        assert!(solved.iter().all(|s| !s.exact));
        // Still a sound upper bound.
        check_against_iteration(&sys, 9);
    }

    #[test]
    fn constant_only_recurrence() {
        // b(h+1) = 5 (no self-dependency), b(1) = 0.
        let mut sys = RecurrenceSystem::new();
        sys.add_equation(1, c(5));
        let solved = sys.solve().unwrap();
        check_against_iteration(&sys, 8);
        assert!(solved[0].closed_form.eval_int(4) >= rat(5));
    }

    #[test]
    fn scc_helper_orders_dependencies_first() {
        let nodes = vec![1, 2, 3];
        let mut deps: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        deps.insert(1, [2].into_iter().collect());
        deps.insert(2, [3].into_iter().collect());
        deps.insert(3, BTreeSet::new());
        let sccs = strongly_connected_components(&nodes, &deps);
        assert_eq!(sccs, vec![vec![3], vec![2], vec![1]]);
    }
}
