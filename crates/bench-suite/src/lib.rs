//! # chora-bench-suite
//!
//! Every benchmark program from the CHORA evaluation (§5), expressed in the
//! `chora-ir` language, together with the results the paper reports for each
//! tool — the raw material for regenerating Table 1, Table 2, and Figure 3.
//!
//! * [`complexity_suite`] — the twelve complexity-analysis benchmarks of
//!   Table 1 (fibonacci ... ackermann), each instrumented with a cost
//!   counter;
//! * [`assertion_suite`] — the three hand-written assertion benchmarks of
//!   Table 2 (`quad`, `pow2_overflow`, `height`) and an SV-COMP-recursive
//!   style suite for Figure 3;
//! * [`mutual_suite`] — the worked mutual-recursion examples of §4.4/§4.5.
//!
//! ```
//! use chora_bench_suite::complexity_suite;
//! let rows = complexity_suite::all();
//! assert_eq!(rows.len(), 12);
//! assert!(rows.iter().any(|b| b.name == "strassen"));
//! ```

pub mod assertion_suite;
pub mod complexity_suite;
pub mod mutual_suite;

pub use assertion_suite::AssertionBenchmark;
pub use complexity_suite::ComplexityBenchmark;
