//! The twelve complexity-analysis benchmarks of Table 1, expressed in the
//! `chora-ir` language, together with the bounds reported in the paper.
//!
//! Each benchmark is a working cost-instrumented implementation (not a cost
//! model), mirroring the paper's statement that "our implementations of
//! divide-and-conquer algorithms are working implementations rather than cost
//! models" as closely as the integer IR allows: data-structure contents are
//! abstracted, but the recursion/loop structure and the cost accounting are
//! faithful.

use chora_ir::{Cond, Expr, Procedure, Program, Stmt};

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct ComplexityBenchmark {
    /// Benchmark name (matching the paper's table).
    pub name: &'static str,
    /// The program.
    pub program: Program,
    /// The recursive procedure whose cost is bounded.
    pub procedure: &'static str,
    /// The cost counter global variable.
    pub cost_var: &'static str,
    /// The size parameter used for asymptotic classification.
    pub size_param: &'static str,
    /// The true asymptotic bound (column "Actual").
    pub actual: &'static str,
    /// The bound reported for CHORA in the paper (column 3).
    pub paper_chora: &'static str,
    /// The bound reported for ICRA in the paper (column 4).
    pub paper_icra: &'static str,
    /// The bound reported for the best other tool (column 5).
    pub paper_other: &'static str,
}

fn v(name: &str) -> Expr {
    Expr::var(name)
}
fn i(x: i64) -> Expr {
    Expr::int(x)
}
fn tick(counter: &str, amount: i64) -> Stmt {
    Stmt::assign(counter, Expr::var(counter).add(Expr::int(amount)))
}

/// All twelve Table 1 benchmarks.
pub fn all() -> Vec<ComplexityBenchmark> {
    vec![
        fibonacci(),
        hanoi(),
        subset_sum(),
        bst_copy(),
        ball_bins3(),
        karatsuba(),
        mergesort(),
        strassen(),
        qsort_calls(),
        qsort_steps(),
        closest_pair(),
        ackermann(),
    ]
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<ComplexityBenchmark> {
    all().into_iter().find(|b| b.name == name)
}

/// `fibonacci`: two recursive calls on `n-1` / `n-2`, constant work per call.
pub fn fibonacci() -> ComplexityBenchmark {
    let mut program = Program::new();
    program.add_global("cost");
    program.add_procedure(Procedure::new(
        "fib",
        &["n"],
        &[],
        Stmt::seq(vec![
            tick("cost", 1),
            Stmt::if_then(
                Cond::ge(v("n"), i(2)),
                Stmt::seq(vec![
                    Stmt::call("fib", vec![v("n").sub(i(1))]),
                    Stmt::call("fib", vec![v("n").sub(i(2))]),
                ]),
            ),
        ]),
    ));
    ComplexityBenchmark {
        name: "fibonacci",
        program,
        procedure: "fib",
        cost_var: "cost",
        size_param: "n",
        actual: "O(phi^n)",
        paper_chora: "O(2^n)",
        paper_icra: "n.b.",
        paper_other: "PUBS: O(2^n)",
    }
}

/// `hanoi`: the Tower-of-Hanoi move count.
pub fn hanoi() -> ComplexityBenchmark {
    let mut program = Program::new();
    program.add_global("cost");
    program.add_procedure(Procedure::new(
        "hanoi",
        &["n"],
        &[],
        Stmt::seq(vec![
            tick("cost", 1),
            Stmt::if_then(
                Cond::gt(v("n"), i(0)),
                Stmt::seq(vec![
                    Stmt::call("hanoi", vec![v("n").sub(i(1))]),
                    Stmt::call("hanoi", vec![v("n").sub(i(1))]),
                ]),
            ),
        ]),
    ));
    ComplexityBenchmark {
        name: "hanoi",
        program,
        procedure: "hanoi",
        cost_var: "cost",
        size_param: "n",
        actual: "O(2^n)",
        paper_chora: "O(2^n)",
        paper_icra: "n.b.",
        paper_other: "PUBS: O(2^n)",
    }
}

/// `subset_sum`: the brute-force subset-sum search of §2 (Fig. 1), with the
/// `nTicks` counter and the accumulating `found`/return-value logic.
pub fn subset_sum() -> ComplexityBenchmark {
    let mut program = Program::new();
    program.add_global("nTicks");
    program.add_global("found");
    program.add_procedure(Procedure::new(
        "subsetSumAux",
        &["i", "n", "sum"],
        &["size"],
        Stmt::seq(vec![
            tick("nTicks", 1),
            Stmt::if_else(
                Cond::ge(v("i"), v("n")),
                Stmt::seq(vec![
                    Stmt::if_then(Cond::eq(v("sum"), i(0)), Stmt::assign("found", i(1))),
                    Stmt::Return(Some(i(0))),
                ]),
                Stmt::seq(vec![
                    // First call considers including element i (the element's
                    // value is abstracted by a non-deterministic delta).
                    Stmt::Havoc(chora_expr::Symbol::new("delta")),
                    Stmt::call_assign(
                        "size",
                        "subsetSumAux",
                        vec![v("i").add(i(1)), v("n"), v("sum").add(v("delta"))],
                    ),
                    Stmt::if_then(
                        Cond::eq(v("found"), i(1)),
                        Stmt::Return(Some(v("size").add(i(1)))),
                    ),
                    Stmt::call_assign(
                        "size",
                        "subsetSumAux",
                        vec![v("i").add(i(1)), v("n"), v("sum")],
                    ),
                    Stmt::Return(Some(v("size"))),
                ]),
            ),
        ]),
    ));
    program.add_procedure(Procedure::new(
        "subsetSum",
        &["n"],
        &["r"],
        Stmt::seq(vec![
            Stmt::assign("found", i(0)),
            Stmt::call_assign("r", "subsetSumAux", vec![i(0), v("n"), i(0)]),
            Stmt::Return(Some(v("r"))),
        ]),
    ));
    ComplexityBenchmark {
        name: "subset_sum",
        program,
        procedure: "subsetSumAux",
        cost_var: "nTicks",
        size_param: "n",
        actual: "O(2^n)",
        paper_chora: "O(2^n)",
        paper_icra: "n.b.",
        paper_other: "RAML(exp): O(2^n)",
    }
}

/// `bst_copy`: copying a perfectly balanced binary search tree of height `n`.
pub fn bst_copy() -> ComplexityBenchmark {
    let mut program = Program::new();
    program.add_global("cost");
    program.add_procedure(Procedure::new(
        "bst_copy",
        &["n"],
        &[],
        Stmt::seq(vec![
            tick("cost", 1),
            Stmt::if_then(
                Cond::gt(v("n"), i(0)),
                Stmt::seq(vec![
                    Stmt::call("bst_copy", vec![v("n").sub(i(1))]),
                    Stmt::call("bst_copy", vec![v("n").sub(i(1))]),
                ]),
            ),
        ]),
    ));
    ComplexityBenchmark {
        name: "bst_copy",
        program,
        procedure: "bst_copy",
        cost_var: "cost",
        size_param: "n",
        actual: "O(2^n)",
        paper_chora: "O(2^n)",
        paper_icra: "n.b.",
        paper_other: "PUBS: O(2^n)",
    }
}

/// `ball_bins3`: three-way recursion (balls into bins), `3^n` behaviour.
pub fn ball_bins3() -> ComplexityBenchmark {
    let mut program = Program::new();
    program.add_global("cost");
    program.add_procedure(Procedure::new(
        "balls",
        &["n"],
        &[],
        Stmt::seq(vec![
            tick("cost", 1),
            Stmt::if_then(
                Cond::gt(v("n"), i(0)),
                Stmt::seq(vec![
                    Stmt::call("balls", vec![v("n").sub(i(1))]),
                    Stmt::call("balls", vec![v("n").sub(i(1))]),
                    Stmt::call("balls", vec![v("n").sub(i(1))]),
                ]),
            ),
        ]),
    ));
    ComplexityBenchmark {
        name: "ball_bins3",
        program,
        procedure: "balls",
        cost_var: "cost",
        size_param: "n",
        actual: "O(3^n)",
        paper_chora: "O(3^n)",
        paper_icra: "n.b.",
        paper_other: "RAML(exp): O(3^n)",
    }
}

/// `karatsuba`: three recursive calls on `n/2` plus linear combine work.
pub fn karatsuba() -> ComplexityBenchmark {
    let mut program = Program::new();
    program.add_global("cost");
    program.add_procedure(Procedure::new(
        "karatsuba",
        &["n"],
        &["i"],
        Stmt::if_else(
            Cond::le(v("n"), i(1)),
            tick("cost", 1),
            Stmt::seq(vec![
                Stmt::assign("i", i(0)),
                Stmt::while_loop(
                    Cond::lt(v("i"), v("n")),
                    Stmt::seq(vec![tick("cost", 1), Stmt::assign("i", v("i").add(i(1)))]),
                ),
                Stmt::call("karatsuba", vec![v("n").div(2)]),
                Stmt::call("karatsuba", vec![v("n").div(2)]),
                Stmt::call("karatsuba", vec![v("n").div(2)]),
            ]),
        ),
    ));
    ComplexityBenchmark {
        name: "karatsuba",
        program,
        procedure: "karatsuba",
        cost_var: "cost",
        size_param: "n",
        actual: "O(n^log2(3))",
        paper_chora: "O(n^log2(3))",
        paper_icra: "n.b.",
        paper_other: "Chatterjee et al.: O(n^1.6)",
    }
}

/// `mergesort`: two recursive calls on `n/2` plus a linear merge loop.
pub fn mergesort() -> ComplexityBenchmark {
    let mut program = Program::new();
    program.add_global("cost");
    program.add_procedure(Procedure::new(
        "mergesort",
        &["n"],
        &["i"],
        Stmt::if_then(
            Cond::gt(v("n"), i(1)),
            Stmt::seq(vec![
                Stmt::call("mergesort", vec![v("n").div(2)]),
                Stmt::call("mergesort", vec![v("n").div(2)]),
                Stmt::assign("i", i(0)),
                Stmt::while_loop(
                    Cond::lt(v("i"), v("n")),
                    Stmt::seq(vec![tick("cost", 1), Stmt::assign("i", v("i").add(i(1)))]),
                ),
            ]),
        ),
    ));
    ComplexityBenchmark {
        name: "mergesort",
        program,
        procedure: "mergesort",
        cost_var: "cost",
        size_param: "n",
        actual: "O(n log n)",
        paper_chora: "O(n log n)",
        paper_icra: "n.b.",
        paper_other: "PUBS: O(n log n)",
    }
}

/// `strassen`: seven recursive calls on `n/2` plus quadratic combine work.
pub fn strassen() -> ComplexityBenchmark {
    let mut program = Program::new();
    program.add_global("cost");
    let combine = Stmt::seq(vec![
        Stmt::assign("i", i(0)),
        Stmt::while_loop(
            Cond::lt(v("i"), v("n")),
            Stmt::seq(vec![
                Stmt::assign("j", i(0)),
                Stmt::while_loop(
                    Cond::lt(v("j"), v("n")),
                    Stmt::seq(vec![tick("cost", 1), Stmt::assign("j", v("j").add(i(1)))]),
                ),
                Stmt::assign("i", v("i").add(i(1))),
            ]),
        ),
    ]);
    let calls: Vec<Stmt> = (0..7)
        .map(|_| Stmt::call("strassen", vec![v("n").div(2)]))
        .collect();
    let mut body = vec![combine];
    body.extend(calls);
    program.add_procedure(Procedure::new(
        "strassen",
        &["n"],
        &["i", "j"],
        Stmt::if_else(Cond::le(v("n"), i(1)), tick("cost", 1), Stmt::seq(body)),
    ));
    ComplexityBenchmark {
        name: "strassen",
        program,
        procedure: "strassen",
        cost_var: "cost",
        size_param: "n",
        actual: "O(n^log2(7))",
        paper_chora: "O(n^log2(7))",
        paper_icra: "n.b.",
        paper_other: "Chatterjee et al.: O(n^2.9)",
    }
}

/// `qsort_calls`: quicksort counting the number of calls; the paper's CHORA
/// (like PUBS) over-approximates the linear call count as `O(2^n)`.
pub fn qsort_calls() -> ComplexityBenchmark {
    let mut program = Program::new();
    program.add_global("cost");
    program.add_procedure(Procedure::new(
        "qsort",
        &["n"],
        &["k"],
        Stmt::seq(vec![
            tick("cost", 1),
            Stmt::if_then(
                Cond::ge(v("n"), i(1)),
                Stmt::seq(vec![
                    Stmt::Havoc(chora_expr::Symbol::new("k")),
                    Stmt::Assume(Cond::ge(v("k"), i(0)).and(Cond::lt(v("k"), v("n")))),
                    Stmt::call("qsort", vec![v("k")]),
                    Stmt::call("qsort", vec![v("n").sub(v("k")).sub(i(1))]),
                ]),
            ),
        ]),
    ));
    ComplexityBenchmark {
        name: "qsort_calls",
        program,
        procedure: "qsort",
        cost_var: "cost",
        size_param: "n",
        actual: "O(n)",
        paper_chora: "O(2^n)",
        paper_icra: "O(n)",
        paper_other: "Carbonneaux et al.: O(n)",
    }
}

/// `qsort_steps`: quicksort counting instructions (linear partition work per
/// call); the paper's CHORA reports `O(n·2^n)`.
pub fn qsort_steps() -> ComplexityBenchmark {
    let mut program = Program::new();
    program.add_global("cost");
    program.add_procedure(Procedure::new(
        "qsort_steps",
        &["n"],
        &["k", "i"],
        Stmt::if_then(
            Cond::ge(v("n"), i(1)),
            Stmt::seq(vec![
                Stmt::assign("i", i(0)),
                Stmt::while_loop(
                    Cond::lt(v("i"), v("n")),
                    Stmt::seq(vec![tick("cost", 1), Stmt::assign("i", v("i").add(i(1)))]),
                ),
                Stmt::Havoc(chora_expr::Symbol::new("k")),
                Stmt::Assume(Cond::ge(v("k"), i(0)).and(Cond::lt(v("k"), v("n")))),
                Stmt::call("qsort_steps", vec![v("k")]),
                Stmt::call("qsort_steps", vec![v("n").sub(v("k")).sub(i(1))]),
            ]),
        ),
    ));
    ComplexityBenchmark {
        name: "qsort_steps",
        program,
        procedure: "qsort_steps",
        cost_var: "cost",
        size_param: "n",
        actual: "O(n^2)",
        paper_chora: "O(n·2^n)",
        paper_icra: "n.b.",
        paper_other: "Chatterjee et al.: O(n^2)",
    }
}

/// `closest_pair`: divide-and-conquer closest pair with a pre-sort; the paper
/// reports that CHORA finds no bound.
pub fn closest_pair() -> ComplexityBenchmark {
    let mut program = Program::new();
    program.add_global("cost");
    // A quadratic comparison sort used before the divide-and-conquer phase.
    program.add_procedure(Procedure::new(
        "sort_points",
        &["n"],
        &["i", "j"],
        Stmt::seq(vec![
            Stmt::assign("i", i(0)),
            Stmt::while_loop(
                Cond::lt(v("i"), v("n")),
                Stmt::seq(vec![
                    Stmt::assign("j", v("i").add(i(1))),
                    Stmt::while_loop(
                        Cond::lt(v("j"), v("n")),
                        Stmt::seq(vec![tick("cost", 1), Stmt::assign("j", v("j").add(i(1)))]),
                    ),
                    Stmt::assign("i", v("i").add(i(1))),
                ]),
            ),
        ]),
    ));
    // The recursive phase: the strip examination loop runs a
    // non-deterministically chosen number of times bounded only by the
    // amount of un-sorted structure, which is what defeats the analysis.
    program.add_procedure(Procedure::new(
        "closest_rec",
        &["lo", "hi"],
        &["mid", "s"],
        Stmt::if_then(
            Cond::gt(v("hi").sub(v("lo")), i(3)),
            Stmt::seq(vec![
                Stmt::assign("mid", v("lo").add(v("hi")).div(2)),
                Stmt::call("closest_rec", vec![v("lo"), v("mid")]),
                Stmt::call("closest_rec", vec![v("mid"), v("hi")]),
                Stmt::Havoc(chora_expr::Symbol::new("s")),
                Stmt::while_loop(
                    Cond::gt(v("s"), i(0)),
                    Stmt::seq(vec![tick("cost", 1), Stmt::assign("s", v("s").sub(i(1)))]),
                ),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "closest_pair",
        &["n"],
        &[],
        Stmt::seq(vec![
            Stmt::call("sort_points", vec![v("n")]),
            Stmt::call("closest_rec", vec![i(0), v("n")]),
        ]),
    ));
    ComplexityBenchmark {
        name: "closest_pair",
        program,
        procedure: "closest_rec",
        cost_var: "cost",
        size_param: "n",
        actual: "O(n log n)",
        paper_chora: "n.b.",
        paper_icra: "n.b.",
        paper_other: "Chatterjee et al.: O(n log n)",
    }
}

/// `ackermann`: the Ackermann function's cost; no elementary bound exists and
/// the paper reports that no tool finds one.
pub fn ackermann() -> ComplexityBenchmark {
    let mut program = Program::new();
    program.add_global("cost");
    program.add_procedure(Procedure::new(
        "ackermann",
        &["m", "n"],
        &["t"],
        Stmt::seq(vec![
            tick("cost", 1),
            Stmt::if_else(
                Cond::eq(v("m"), i(0)),
                Stmt::Return(Some(v("n").add(i(1)))),
                Stmt::if_else(
                    Cond::eq(v("n"), i(0)),
                    Stmt::seq(vec![
                        Stmt::call_assign("t", "ackermann", vec![v("m").sub(i(1)), i(1)]),
                        Stmt::Return(Some(v("t"))),
                    ]),
                    Stmt::seq(vec![
                        Stmt::call_assign("t", "ackermann", vec![v("m"), v("n").sub(i(1))]),
                        Stmt::call_assign("t", "ackermann", vec![v("m").sub(i(1)), v("t")]),
                        Stmt::Return(Some(v("t"))),
                    ]),
                ),
            ),
        ]),
    ));
    ComplexityBenchmark {
        name: "ackermann",
        program,
        procedure: "ackermann",
        cost_var: "cost",
        size_param: "n",
        actual: "Ack(n)",
        paper_chora: "n.b.",
        paper_icra: "n.b.",
        paper_other: "PUBS: n.b.",
    }
}
