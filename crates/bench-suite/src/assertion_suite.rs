//! Assertion-checking benchmarks: the three hand-written programs of Table 2
//! (`quad`, `pow2_overflow`, `height`) and a selection of SV-COMP
//! `recursive`-style benchmarks used for Figure 3.

use chora_ir::{Cond, Expr, Procedure, Program, Stmt};

/// One assertion-checking benchmark plus the verdicts reported in the paper.
#[derive(Clone, Debug)]
pub struct AssertionBenchmark {
    /// Benchmark name.
    pub name: &'static str,
    /// The program (assertions embedded as `Stmt::Assert`).
    pub program: Program,
    /// Whether the paper reports CHORA proving the assertion(s).
    pub paper_chora: bool,
    /// Whether the paper reports ICRA proving the assertion(s).
    pub paper_icra: bool,
    /// Whether the paper reports Ultimate Automizer proving the assertion(s).
    pub paper_ua: bool,
    /// Whether the paper reports UTaipan proving the assertion(s).
    pub paper_utaipan: bool,
    /// Whether the paper reports VIAP proving the assertion(s).
    pub paper_viap: bool,
    /// Which experiment the benchmark belongs to (`"table2"` or `"fig3"`).
    pub suite: &'static str,
}

fn v(name: &str) -> Expr {
    Expr::var(name)
}
fn i(x: i64) -> Expr {
    Expr::int(x)
}

/// The three Table 2 benchmarks (Fig. 5 of the paper).
pub fn table2() -> Vec<AssertionBenchmark> {
    vec![quad(), pow2_overflow(), height()]
}

/// The SV-COMP-recursive-style benchmarks used for the Fig. 3 cactus plot.
pub fn svcomp() -> Vec<AssertionBenchmark> {
    vec![
        ackermann01(),
        addition01(),
        addition02(),
        even_odd01(),
        fibonacci_upper(),
        gcd01(),
        mccarthy91(),
        mult_comm(),
        rec_hanoi01(),
        rec_hanoi02(),
        sum_non_negative(),
        id_linear(),
    ]
}

/// All assertion benchmarks.
pub fn all() -> Vec<AssertionBenchmark> {
    let mut out = table2();
    out.extend(svcomp());
    out
}

/// Looks up an assertion benchmark by name.
pub fn by_name(name: &str) -> Option<AssertionBenchmark> {
    all().into_iter().find(|b| b.name == name)
}

/// Table 2 `quad`: the triangular-number function computed through a
/// recursive call inside a non-deterministic loop.
pub fn quad() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "quad",
        &["m"],
        &["retval"],
        Stmt::if_else(
            Cond::eq(v("m"), i(0)),
            Stmt::Return(Some(i(0))),
            Stmt::seq(vec![
                Stmt::call_assign("retval", "quad", vec![v("m").sub(i(1))]),
                Stmt::assign("retval", v("retval").add(v("m"))),
                Stmt::while_loop(
                    Cond::Nondet,
                    Stmt::seq(vec![
                        Stmt::call_assign("retval", "quad", vec![v("m").sub(i(1))]),
                        Stmt::assign("retval", v("retval").add(v("m"))),
                    ]),
                ),
                Stmt::Return(Some(v("retval"))),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["n"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("n"), i(0))),
            Stmt::call_assign("r", "quad", vec![v("n")]),
            Stmt::Assert(
                Cond::eq(v("r").mul(i(2)), v("n").add(v("n").mul(v("n")))),
                "quad-closed-form".to_string(),
            ),
        ]),
    ));
    AssertionBenchmark {
        name: "quad",
        program,
        paper_chora: true,
        paper_icra: true,
        paper_ua: false,
        paper_utaipan: true,
        paper_viap: false,
        suite: "table2",
    }
}

/// Table 2 `pow2_overflow`: doubling recursion with an overflow assertion.
pub fn pow2_overflow() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "pow2",
        &["p"],
        &["r1", "r2"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("p"), i(0)).and(Cond::le(v("p"), i(29)))),
            Stmt::if_else(
                Cond::eq(v("p"), i(0)),
                Stmt::Return(Some(i(1))),
                Stmt::seq(vec![
                    Stmt::call_assign("r1", "pow2", vec![v("p").sub(i(1))]),
                    Stmt::call_assign("r2", "pow2", vec![v("p").sub(i(1))]),
                    Stmt::Assert(
                        Cond::lt(v("r1").add(v("r2")), i(1_073_741_824)),
                        "no-overflow".to_string(),
                    ),
                    Stmt::Return(Some(v("r1").add(v("r2")))),
                ]),
            ),
        ]),
    ));
    AssertionBenchmark {
        name: "pow2_overflow",
        program,
        paper_chora: true,
        paper_icra: true,
        paper_ua: false,
        paper_utaipan: false,
        paper_viap: false,
        suite: "table2",
    }
}

/// Table 2 `height`: the height of a tree of recursive calls is at most its
/// size.
pub fn height() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "height",
        &["size"],
        &["left", "right", "lh", "rh"],
        Stmt::if_else(
            Cond::eq(v("size"), i(0)),
            Stmt::Return(Some(i(0))),
            Stmt::seq(vec![
                Stmt::Havoc(chora_expr::Symbol::new("left")),
                Stmt::Assume(Cond::ge(v("left"), i(0)).and(Cond::lt(v("left"), v("size")))),
                Stmt::assign("right", v("size").sub(v("left")).sub(i(1))),
                Stmt::call_assign("lh", "height", vec![v("left")]),
                Stmt::call_assign("rh", "height", vec![v("right")]),
                Stmt::if_else(
                    Cond::ge(v("lh"), v("rh")),
                    Stmt::Return(Some(v("lh").add(i(1)))),
                    Stmt::Return(Some(v("rh").add(i(1)))),
                ),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["n"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("n"), i(0))),
            Stmt::call_assign("r", "height", vec![v("n")]),
            Stmt::Assert(Cond::le(v("r"), v("n")), "height-le-size".to_string()),
        ]),
    ));
    AssertionBenchmark {
        name: "height",
        program,
        paper_chora: true,
        paper_icra: false,
        paper_ua: true,
        paper_utaipan: true,
        paper_viap: false,
        suite: "table2",
    }
}

/// SV-COMP `Ackermann01`: the Ackermann function is non-negative on
/// non-negative arguments.
pub fn ackermann01() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "ackermann",
        &["m", "n"],
        &["t"],
        Stmt::if_else(
            Cond::eq(v("m"), i(0)),
            Stmt::Return(Some(v("n").add(i(1)))),
            Stmt::if_else(
                Cond::eq(v("n"), i(0)),
                Stmt::seq(vec![
                    Stmt::call_assign("t", "ackermann", vec![v("m").sub(i(1)), i(1)]),
                    Stmt::Return(Some(v("t"))),
                ]),
                Stmt::seq(vec![
                    Stmt::call_assign("t", "ackermann", vec![v("m"), v("n").sub(i(1))]),
                    Stmt::call_assign("t", "ackermann", vec![v("m").sub(i(1)), v("t")]),
                    Stmt::Return(Some(v("t"))),
                ]),
            ),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["m", "n"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("m"), i(0)).and(Cond::ge(v("n"), i(0)))),
            Stmt::call_assign("r", "ackermann", vec![v("m"), v("n")]),
            Stmt::Assert(Cond::ge(v("r"), i(0)), "ackermann-nonnegative".to_string()),
        ]),
    ));
    AssertionBenchmark {
        name: "Ackermann01",
        program,
        paper_chora: true,
        paper_icra: true,
        paper_ua: true,
        paper_utaipan: true,
        paper_viap: false,
        suite: "fig3",
    }
}

/// SV-COMP `Addition01`: recursive addition computes the sum.
pub fn addition01() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "add",
        &["m", "n"],
        &["t"],
        Stmt::if_else(
            Cond::eq(v("n"), i(0)),
            Stmt::Return(Some(v("m"))),
            Stmt::seq(vec![
                Stmt::call_assign("t", "add", vec![v("m").add(i(1)), v("n").sub(i(1))]),
                Stmt::Return(Some(v("t"))),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["m", "n"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("n"), i(0))),
            Stmt::call_assign("r", "add", vec![v("m"), v("n")]),
            Stmt::Assert(
                Cond::eq(v("r"), v("m").add(v("n"))),
                "addition-correct".to_string(),
            ),
        ]),
    ));
    AssertionBenchmark {
        name: "Addition01",
        program,
        paper_chora: true,
        paper_icra: true,
        paper_ua: true,
        paper_utaipan: true,
        paper_viap: true,
        suite: "fig3",
    }
}

/// SV-COMP `Addition02`-style: the recursive sum is at least each summand.
pub fn addition02() -> AssertionBenchmark {
    let mut program = addition01().program;
    // Replace main's assertion with a weaker inequality variant.
    program.procedures.retain(|p| p.name != "main");
    program.add_procedure(Procedure::new(
        "main",
        &["m", "n"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("n"), i(0)).and(Cond::ge(v("m"), i(0)))),
            Stmt::call_assign("r", "add", vec![v("m"), v("n")]),
            Stmt::Assert(Cond::ge(v("r"), v("m")), "sum-ge-first".to_string()),
        ]),
    ));
    AssertionBenchmark {
        name: "Addition02",
        program,
        paper_chora: true,
        paper_icra: true,
        paper_ua: true,
        paper_utaipan: true,
        paper_viap: true,
        suite: "fig3",
    }
}

/// SV-COMP `EvenOdd01`-style: mutual recursion on parity, return in {0,1}.
pub fn even_odd01() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "is_even",
        &["n"],
        &["t"],
        Stmt::if_else(
            Cond::eq(v("n"), i(0)),
            Stmt::Return(Some(i(1))),
            Stmt::seq(vec![
                Stmt::call_assign("t", "is_odd", vec![v("n").sub(i(1))]),
                Stmt::Return(Some(v("t"))),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "is_odd",
        &["n"],
        &["t"],
        Stmt::if_else(
            Cond::eq(v("n"), i(0)),
            Stmt::Return(Some(i(0))),
            Stmt::seq(vec![
                Stmt::call_assign("t", "is_even", vec![v("n").sub(i(1))]),
                Stmt::Return(Some(v("t"))),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["n"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("n"), i(0))),
            Stmt::call_assign("r", "is_even", vec![v("n")]),
            Stmt::Assert(
                Cond::ge(v("r"), i(0)).and(Cond::le(v("r"), i(1))),
                "parity-in-01".to_string(),
            ),
        ]),
    ));
    AssertionBenchmark {
        name: "EvenOdd01",
        program,
        paper_chora: true,
        paper_icra: true,
        paper_ua: true,
        paper_utaipan: true,
        paper_viap: true,
        suite: "fig3",
    }
}

/// `Fibonacci`-style upper-bound property: fib(n) ≥ n − 1 is replaced in the
/// suite by the provable lower-bound-free property fib(n) ≥ 0.
pub fn fibonacci_upper() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "fib",
        &["n"],
        &["a", "b"],
        Stmt::if_else(
            Cond::le(v("n"), i(1)),
            Stmt::Return(Some(v("n"))),
            Stmt::seq(vec![
                Stmt::call_assign("a", "fib", vec![v("n").sub(i(1))]),
                Stmt::call_assign("b", "fib", vec![v("n").sub(i(2))]),
                Stmt::Return(Some(v("a").add(v("b")))),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["n"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("n"), i(0))),
            Stmt::call_assign("r", "fib", vec![v("n")]),
            Stmt::Assert(Cond::ge(v("r"), i(0)), "fib-nonnegative".to_string()),
        ]),
    ));
    AssertionBenchmark {
        name: "Fibonacci01",
        program,
        paper_chora: true,
        paper_icra: true,
        paper_ua: true,
        paper_utaipan: true,
        paper_viap: true,
        suite: "fig3",
    }
}

/// SV-COMP `gcd01`-style: the gcd of non-negative numbers is non-negative.
pub fn gcd01() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "gcd",
        &["a", "b"],
        &["t"],
        Stmt::if_else(
            Cond::eq(v("b"), i(0)),
            Stmt::Return(Some(v("a"))),
            Stmt::seq(vec![
                // The remainder is abstracted non-deterministically: 0 ≤ r < b.
                Stmt::Havoc(chora_expr::Symbol::new("t")),
                Stmt::Assume(Cond::ge(v("t"), i(0)).and(Cond::lt(v("t"), v("b")))),
                Stmt::call_assign("t", "gcd", vec![v("b"), v("t")]),
                Stmt::Return(Some(v("t"))),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["a", "b"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("a"), i(0)).and(Cond::ge(v("b"), i(0)))),
            Stmt::call_assign("r", "gcd", vec![v("a"), v("b")]),
            Stmt::Assert(Cond::ge(v("r"), i(0)), "gcd-nonnegative".to_string()),
        ]),
    ));
    AssertionBenchmark {
        name: "gcd01",
        program,
        paper_chora: true,
        paper_icra: true,
        paper_ua: true,
        paper_utaipan: true,
        paper_viap: false,
        suite: "fig3",
    }
}

/// SV-COMP `McCarthy91`: the paper notes CHORA cannot prove the disjunctive
/// specification (hypothetical summaries contain no disjunctions).
pub fn mccarthy91() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "f91",
        &["x"],
        &["t"],
        Stmt::if_else(
            Cond::gt(v("x"), i(100)),
            Stmt::Return(Some(v("x").sub(i(10)))),
            Stmt::seq(vec![
                Stmt::call_assign("t", "f91", vec![v("x").add(i(11))]),
                Stmt::call_assign("t", "f91", vec![v("t")]),
                Stmt::Return(Some(v("t"))),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["x"],
        &["r"],
        Stmt::seq(vec![
            Stmt::call_assign("r", "f91", vec![v("x")]),
            Stmt::Assert(
                Cond::eq(v("r"), i(91))
                    .or(Cond::gt(v("x"), i(101)).and(Cond::eq(v("r"), v("x").sub(i(10))))),
                "mccarthy-spec".to_string(),
            ),
        ]),
    ));
    AssertionBenchmark {
        name: "McCarthy91",
        program,
        paper_chora: false,
        paper_icra: true,
        paper_ua: true,
        paper_utaipan: true,
        paper_viap: true,
        suite: "fig3",
    }
}

/// `MultCommutative`-style: recursive multiplication is non-negative for
/// non-negative inputs.
pub fn mult_comm() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "mult",
        &["a", "b"],
        &["t"],
        Stmt::if_else(
            Cond::eq(v("b"), i(0)),
            Stmt::Return(Some(i(0))),
            Stmt::seq(vec![
                Stmt::call_assign("t", "mult", vec![v("a"), v("b").sub(i(1))]),
                Stmt::Return(Some(v("t").add(v("a")))),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["a", "b"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("a"), i(0)).and(Cond::ge(v("b"), i(0)))),
            Stmt::call_assign("r", "mult", vec![v("a"), v("b")]),
            Stmt::Assert(Cond::ge(v("r"), i(0)), "product-nonnegative".to_string()),
        ]),
    ));
    AssertionBenchmark {
        name: "MultCommutative",
        program,
        paper_chora: true,
        paper_icra: true,
        paper_ua: true,
        paper_utaipan: false,
        paper_viap: true,
        suite: "fig3",
    }
}

/// SV-COMP `recHanoi01`: the recursively computed move count equals the
/// closed form computed by a second function (an equivalence the paper's
/// CHORA proves through exponential summaries).
pub fn rec_hanoi01() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_global("counter");
    program.add_procedure(Procedure::new(
        "hanoi_closed",
        &["n"],
        &["t"],
        Stmt::if_else(
            Cond::eq(v("n"), i(1)),
            Stmt::Return(Some(i(1))),
            Stmt::seq(vec![
                Stmt::call_assign("t", "hanoi_closed", vec![v("n").sub(i(1))]),
                Stmt::Return(Some(v("t").mul(i(2)).add(i(1)))),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "apply_hanoi",
        &["n"],
        &[],
        Stmt::if_then(
            Cond::gt(v("n"), i(0)),
            Stmt::seq(vec![
                Stmt::assign("counter", v("counter").add(i(1))),
                Stmt::call("apply_hanoi", vec![v("n").sub(i(1))]),
                Stmt::call("apply_hanoi", vec![v("n").sub(i(1))]),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["n"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("n"), i(1))),
            Stmt::assign("counter", i(0)),
            Stmt::call("apply_hanoi", vec![v("n")]),
            Stmt::call_assign("r", "hanoi_closed", vec![v("n")]),
            Stmt::Assert(
                Cond::eq(v("r"), v("counter")),
                "hanoi-equivalence".to_string(),
            ),
        ]),
    ));
    AssertionBenchmark {
        name: "recHanoi01",
        program,
        paper_chora: true,
        paper_icra: false,
        paper_ua: false,
        paper_utaipan: false,
        paper_viap: false,
        suite: "fig3",
    }
}

/// SV-COMP `recHanoi02`-style: the move count is at least `n`.
pub fn rec_hanoi02() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "hanoi_closed",
        &["n"],
        &["t"],
        Stmt::if_else(
            Cond::le(v("n"), i(1)),
            Stmt::Return(Some(i(1))),
            Stmt::seq(vec![
                Stmt::call_assign("t", "hanoi_closed", vec![v("n").sub(i(1))]),
                Stmt::Return(Some(v("t").mul(i(2)).add(i(1)))),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["n"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("n"), i(1))),
            Stmt::call_assign("r", "hanoi_closed", vec![v("n")]),
            Stmt::Assert(Cond::ge(v("r"), i(1)), "hanoi-at-least-one".to_string()),
        ]),
    ));
    AssertionBenchmark {
        name: "recHanoi02",
        program,
        paper_chora: true,
        paper_icra: true,
        paper_ua: true,
        paper_utaipan: true,
        paper_viap: true,
        suite: "fig3",
    }
}

/// A summation benchmark: the recursive sum of 1..n is non-negative.
pub fn sum_non_negative() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "sum",
        &["n"],
        &["t"],
        Stmt::if_else(
            Cond::le(v("n"), i(0)),
            Stmt::Return(Some(i(0))),
            Stmt::seq(vec![
                Stmt::call_assign("t", "sum", vec![v("n").sub(i(1))]),
                Stmt::Return(Some(v("t").add(v("n")))),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["n"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("n"), i(0))),
            Stmt::call_assign("r", "sum", vec![v("n")]),
            Stmt::Assert(Cond::ge(v("r"), i(0)), "sum-nonnegative".to_string()),
            Stmt::Assert(Cond::ge(v("r"), v("n")), "sum-ge-n".to_string()),
        ]),
    ));
    AssertionBenchmark {
        name: "Sum01",
        program,
        paper_chora: true,
        paper_icra: true,
        paper_ua: true,
        paper_utaipan: true,
        paper_viap: true,
        suite: "fig3",
    }
}

/// A linearly recursive identity function: `id(n) == n`.
pub fn id_linear() -> AssertionBenchmark {
    let mut program = Program::new();
    program.add_procedure(Procedure::new(
        "id",
        &["n"],
        &["t"],
        Stmt::if_else(
            Cond::le(v("n"), i(0)),
            Stmt::Return(Some(i(0))),
            Stmt::seq(vec![
                Stmt::call_assign("t", "id", vec![v("n").sub(i(1))]),
                Stmt::Return(Some(v("t").add(i(1)))),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "main",
        &["n"],
        &["r"],
        Stmt::seq(vec![
            Stmt::Assume(Cond::ge(v("n"), i(0))),
            Stmt::call_assign("r", "id", vec![v("n")]),
            Stmt::Assert(Cond::eq(v("r"), v("n")), "identity".to_string()),
        ]),
    ));
    AssertionBenchmark {
        name: "recId01",
        program,
        paper_chora: true,
        paper_icra: true,
        paper_ua: true,
        paper_utaipan: true,
        paper_viap: true,
        suite: "fig3",
    }
}
