//! The mutual-recursion worked examples of §4.4 (Ex. 4.1) and §4.5 (Ex. 4.2).

use chora_ir::{Cond, Expr, Procedure, Program, Stmt};

fn v(name: &str) -> Expr {
    Expr::var(name)
}
fn i(x: i64) -> Expr {
    Expr::int(x)
}

/// Ex. 4.1: `P1` calls `P2` eighteen times, `P2` calls `P1` twice; each base
/// case increments the global `g`.  CHORA's bounds are `3·6^(n-1)` and
/// `6^(n-1)` respectively.
pub fn example_4_1() -> Program {
    let mut program = Program::new();
    program.add_global("g");
    let loop_calling = |callee: &str, times: i64| {
        Stmt::seq(vec![
            Stmt::assign("i", i(0)),
            Stmt::while_loop(
                Cond::lt(v("i"), i(times)),
                Stmt::seq(vec![
                    Stmt::call(callee, vec![v("n").sub(i(1))]),
                    Stmt::assign("i", v("i").add(i(1))),
                ]),
            ),
        ])
    };
    program.add_procedure(Procedure::new(
        "P1",
        &["n"],
        &["i"],
        Stmt::if_else(
            Cond::le(v("n"), i(1)),
            Stmt::assign("g", v("g").add(i(1))),
            loop_calling("P2", 18),
        ),
    ));
    program.add_procedure(Procedure::new(
        "P2",
        &["n"],
        &["i"],
        Stmt::if_else(
            Cond::le(v("n"), i(1)),
            Stmt::assign("g", v("g").add(i(1))),
            loop_calling("P1", 2),
        ),
    ));
    program
}

/// Ex. 4.2: a mutually recursive pair in which `P3` has no base case (every
/// path calls `P3` or `P4`); `cost` is incremented in `P4`'s base case.
pub fn example_4_2() -> Program {
    let mut program = Program::new();
    program.add_global("cost");
    program.add_procedure(Procedure::new(
        "P3",
        &["n"],
        &[],
        Stmt::if_else(
            Cond::le(v("n"), i(1)),
            Stmt::seq(vec![
                Stmt::call("P4", vec![v("n").sub(i(1))]),
                Stmt::call("P4", vec![v("n").sub(i(1))]),
            ]),
            Stmt::seq(vec![
                Stmt::call("P3", vec![v("n").sub(i(1))]),
                Stmt::call("P4", vec![v("n").sub(i(1))]),
            ]),
        ),
    ));
    program.add_procedure(Procedure::new(
        "P4",
        &["n"],
        &[],
        Stmt::if_else(
            Cond::le(v("n"), i(1)),
            Stmt::assign("cost", v("cost").add(i(1))),
            Stmt::seq(vec![
                Stmt::call("P4", vec![v("n").sub(i(1))]),
                Stmt::call("P3", vec![v("n").sub(i(1))]),
            ]),
        ),
    ));
    program
}

/// The `differ` procedure of §4.3 (Fig. 2), used by the two-region analysis
/// discussion; `x` and `y` are returned through globals.
pub fn differ() -> Program {
    let mut program = Program::new();
    program.add_global("x");
    program.add_global("y");
    program.add_procedure(Procedure::new(
        "differ",
        &["n"],
        &["temp"],
        Stmt::if_else(
            Cond::eq(v("n"), i(0)).or(Cond::eq(v("n"), i(1))),
            Stmt::seq(vec![Stmt::assign("x", i(0)), Stmt::assign("y", i(0))]),
            Stmt::seq(vec![
                Stmt::if_else(
                    Cond::Nondet,
                    Stmt::call("differ", vec![v("n").sub(i(1))]),
                    Stmt::call("differ", vec![v("n").sub(i(2))]),
                ),
                Stmt::assign("temp", v("x")),
                Stmt::if_else(
                    Cond::Nondet,
                    Stmt::call("differ", vec![v("n").sub(i(1))]),
                    Stmt::call("differ", vec![v("n").sub(i(2))]),
                ),
                Stmt::assign("x", v("temp").add(i(1))),
                Stmt::assign("y", v("y").add(i(1))),
            ]),
        ),
    ));
    program
}
