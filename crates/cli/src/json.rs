//! A tiny JSON emitter and parser (the build environment is offline, so
//! no serde).
//!
//! Only what the CLI needs: objects, arrays, strings, numbers, and booleans,
//! emitted with stable key order and two-space indentation; parsing is a
//! straightforward recursive descent used by the `/v1/batch` request body.

use std::fmt::Write;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Key order is preserved as inserted.
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds a field to an object; panics on non-objects.
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value)),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Parses one JSON document (surrounding whitespace allowed, trailing
    /// garbage rejected).  Errors carry the byte offset they occurred at.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data after JSON value at byte {pos}"));
        }
        Ok(value)
    }

    /// The string payload, for `Json::Str` values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, for `Json::Array` values.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of a `Json::Object` (first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, depth + 1);
                    Json::Str(key.clone()).write(out, depth + 1);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", byte as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(format!("unexpected byte `{}` at byte {pos}", b as char)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not needed for `.imp` sources;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Consume one UTF-8 scalar (the input is a &str and `pos`
                // only ever advances by whole scalars, so the sequence
                // length read off the lead byte is trustworthy).
                let len = match b {
                    b if b < 0x80 => 1,
                    b if b >= 0xf0 => 4,
                    b if b >= 0xe0 => 3,
                    _ => 2,
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {pos}"))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number");
    if float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_what_it_prints() {
        let doc = Json::object()
            .field("name", Json::str("fib \"quoted\"\n"))
            .field("count", Json::Int(-3))
            .field("ratio", Json::Float(1.5))
            .field("ok", Json::Bool(true))
            .field("none", Json::Null)
            .field(
                "items",
                Json::Array(vec![Json::Int(1), Json::str("two"), Json::Array(vec![])]),
            );
        let parsed = Json::parse(&doc.pretty()).expect("round trip");
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("fib \"quoted\"\n")
        );
        assert!(matches!(parsed.get("count"), Some(Json::Int(-3))));
        assert!(matches!(parsed.get("ratio"), Some(Json::Float(r)) if *r == 1.5));
        assert!(matches!(parsed.get("ok"), Some(Json::Bool(true))));
        assert!(matches!(parsed.get("none"), Some(Json::Null)));
        let items = parsed.get("items").and_then(Json::as_array).expect("array");
        assert_eq!(items.len(), 3);
        assert!(matches!(&items[2], Json::Array(v) if v.is_empty()));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let parsed = Json::parse(r#"["a\tb", "Aé", "π"]"#).expect("parses");
        let items = parsed.as_array().expect("array");
        assert_eq!(items[0].as_str(), Some("a\tb"));
        assert_eq!(items[1].as_str(), Some("Aé"));
        assert_eq!(items[2].as_str(), Some("π"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "[1, 2",
            "{\"a\" 1}",
            "[1,]1",
            "nulp",
            "\"open",
            "[1] trailing",
            "{\"a\": }",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
