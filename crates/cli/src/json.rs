//! A tiny JSON emitter (the build environment is offline, so no serde).
//!
//! Only what the CLI needs: objects, arrays, strings, numbers, and booleans,
//! emitted with stable key order and two-space indentation.

use std::fmt::Write;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Key order is preserved as inserted.
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds a field to an object; panics on non-objects.
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value)),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, depth + 1);
                    Json::Str(key.clone()).write(out, depth + 1);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}
