//! Recursive-descent parser lowering `.imp` source to [`chora_ir::Program`].
//!
//! Grammar (comments are `//` and `/* */`):
//!
//! ```text
//! program   := item*
//! item      := "global" ident ("," ident)* ";"
//!            | "proc" ident "(" [ident ("," ident)*] ")"
//!              ["locals" ident ("," ident)*] block
//! block     := "{" stmt* "}"
//! stmt      := "skip" ";"
//!            | "havoc" ident ";"
//!            | "assume" "(" cond ")" ";"
//!            | "assert" "(" cond ["," string] ")" ";"
//!            | "return" [expr] ";"
//!            | "if" "(" cond ")" block ["else" block]
//!            | "while" "(" cond ")" block
//!            | ident "(" [expr ("," expr)*] ")" ";"          // call
//!            | ident ":=" ident "(" [expr ("," expr)*] ")" ";" // call w/ return
//!            | ident ":=" expr ";"
//! cond      := and_cond ("||" and_cond)*
//! and_cond  := not_cond ("&&" not_cond)*
//! not_cond  := "!" "(" cond ")" | primary_cond
//! primary   := "nondet" | expr cmp expr | "(" cond ")"
//! cmp       := "==" | "!=" | "<" | "<=" | ">" | ">="
//! expr      := mul (("+" | "-") mul)*
//! mul       := unary (("*" unary) | ("/" int))*   // `/` only by a positive constant
//! unary     := "-" int | int | ident | "(" expr ")"
//! ```
//!
//! Undeclared variables assigned in a procedure body become locals
//! automatically; an explicit `locals` clause fixes their order (useful for
//! exact round-tripping).

use crate::lexer::{tokenize, Keyword, ParseError, Token, TokenKind};
use chora_expr::Symbol;
use chora_ir::{CmpOp, Cond, Expr, Procedure, Program, Stmt};
use std::collections::BTreeSet;

/// Parses a full `.imp` program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        assert_counter: 0,
    };
    parser.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    assert_counter: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let t = &self.tokens[self.pos];
        ParseError {
            line: t.line,
            col: t.col,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut out = vec![self.expect_ident()?];
        while *self.peek() == TokenKind::Comma {
            self.bump();
            out.push(self.expect_ident()?);
        }
        Ok(out)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Kw(Keyword::Global) => {
                    self.bump();
                    for g in self.ident_list()? {
                        program.add_global(&g);
                    }
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::Kw(Keyword::Proc) => {
                    let p = self.procedure(&program)?;
                    program.add_procedure(p);
                }
                other => {
                    return Err(self.error(format!("expected `global` or `proc`, found {other}")))
                }
            }
        }
        Ok(program)
    }

    fn procedure(&mut self, program: &Program) -> Result<Procedure, ParseError> {
        self.expect(TokenKind::Kw(Keyword::Proc))?;
        let name = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let params = if *self.peek() == TokenKind::RParen {
            Vec::new()
        } else {
            self.ident_list()?
        };
        self.expect(TokenKind::RParen)?;
        let mut locals = if *self.peek() == TokenKind::Kw(Keyword::Locals) {
            self.bump();
            self.ident_list()?
        } else {
            Vec::new()
        };
        let body = self.block()?;

        // Any assigned variable that is neither a global, a parameter, nor a
        // declared local becomes a local (in symbol order, appended after the
        // declared ones).
        let known: BTreeSet<Symbol> = program
            .globals
            .iter()
            .cloned()
            .chain(params.iter().map(|p| Symbol::new(p)))
            .chain(locals.iter().map(|l| Symbol::new(l)))
            .collect();
        for assigned in body.assigned_variables() {
            if !known.contains(&assigned) {
                locals.push(assigned.to_string());
            }
        }

        let param_refs: Vec<&str> = params.iter().map(|s| s.as_str()).collect();
        let local_refs: Vec<&str> = locals.iter().map(|s| s.as_str()).collect();
        Ok(Procedure::new(&name, &param_refs, &local_refs, body))
    }

    fn block(&mut self) -> Result<Stmt, ParseError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(Stmt::Seq(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            TokenKind::Kw(Keyword::Skip) => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Skip)
            }
            TokenKind::Kw(Keyword::Havoc) => {
                self.bump();
                let v = self.expect_ident()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Havoc(Symbol::new(&v)))
            }
            TokenKind::Kw(Keyword::Assume) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let c = self.cond()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Assume(c))
            }
            TokenKind::Kw(Keyword::Assert) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let c = self.cond()?;
                let label = if *self.peek() == TokenKind::Comma {
                    self.bump();
                    match self.bump() {
                        TokenKind::Str(s) => s,
                        other => {
                            return Err(self.error(format!("expected string label, found {other}")))
                        }
                    }
                } else {
                    self.assert_counter += 1;
                    format!("assert_{}", self.assert_counter)
                };
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Assert(c, label))
            }
            TokenKind::Kw(Keyword::Return) => {
                self.bump();
                if *self.peek() == TokenKind::Semi {
                    self.bump();
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            TokenKind::Kw(Keyword::If) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let c = self.cond()?;
                self.expect(TokenKind::RParen)?;
                let then = self.block()?;
                if *self.peek() == TokenKind::Kw(Keyword::Else) {
                    self.bump();
                    let els = self.block()?;
                    Ok(Stmt::If(c, Box::new(then), Box::new(els)))
                } else {
                    Ok(Stmt::If(c, Box::new(then), Box::new(Stmt::Skip)))
                }
            }
            TokenKind::Kw(Keyword::While) => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let c = self.cond()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While(c, Box::new(body)))
            }
            TokenKind::Ident(name) => {
                if *self.peek2() == TokenKind::LParen {
                    self.bump();
                    let args = self.call_args()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Call {
                        callee: name,
                        args,
                        ret: None,
                    })
                } else {
                    self.bump();
                    self.expect(TokenKind::Assign)?;
                    if let TokenKind::Ident(callee) = self.peek().clone() {
                        if *self.peek2() == TokenKind::LParen {
                            self.bump();
                            let args = self.call_args()?;
                            self.expect(TokenKind::Semi)?;
                            return Ok(Stmt::Call {
                                callee,
                                args,
                                ret: Some(Symbol::new(&name)),
                            });
                        }
                    }
                    let e = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Assign(Symbol::new(&name), e))
                }
            }
            other => Err(self.error(format!("expected statement, found {other}"))),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != TokenKind::RParen {
            args.push(self.expr()?);
            while *self.peek() == TokenKind::Comma {
                self.bump();
                args.push(self.expr()?);
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    // ---- conditions ----

    fn cond(&mut self) -> Result<Cond, ParseError> {
        let mut left = self.and_cond()?;
        while *self.peek() == TokenKind::OrOr {
            self.bump();
            let right = self.and_cond()?;
            left = Cond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_cond(&mut self) -> Result<Cond, ParseError> {
        let mut left = self.not_cond()?;
        while *self.peek() == TokenKind::AndAnd {
            self.bump();
            let right = self.not_cond()?;
            left = Cond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_cond(&mut self) -> Result<Cond, ParseError> {
        if *self.peek() == TokenKind::Bang {
            self.bump();
            self.expect(TokenKind::LParen)?;
            let inner = self.cond()?;
            self.expect(TokenKind::RParen)?;
            Ok(Cond::Not(Box::new(inner)))
        } else {
            self.primary_cond()
        }
    }

    fn primary_cond(&mut self) -> Result<Cond, ParseError> {
        if *self.peek() == TokenKind::Kw(Keyword::Nondet) {
            self.bump();
            return Ok(Cond::Nondet);
        }
        // Both a parenthesized condition and the left-hand expression of a
        // comparison may start with `(`; try the comparison first and
        // backtrack if it does not parse.
        let saved = self.pos;
        match self.comparison() {
            Ok(c) => Ok(c),
            Err(cmp_err) => {
                self.pos = saved;
                if *self.peek() == TokenKind::LParen {
                    self.bump();
                    let inner = self.cond()?;
                    self.expect(TokenKind::RParen)?;
                    Ok(inner)
                } else {
                    Err(cmp_err)
                }
            }
        }
    }

    fn comparison(&mut self) -> Result<Cond, ParseError> {
        let a = self.expr()?;
        let op = match self.peek() {
            TokenKind::EqEq => CmpOp::Eq,
            TokenKind::NotEq => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => return Err(self.error(format!("expected comparison operator, found {other}"))),
        };
        self.bump();
        let b = self.expr()?;
        Ok(Cond::Cmp(a, op, b))
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            match self.peek() {
                TokenKind::Plus => {
                    self.bump();
                    let right = self.mul_expr()?;
                    left = Expr::Add(Box::new(left), Box::new(right));
                }
                TokenKind::Minus => {
                    self.bump();
                    let right = self.mul_expr()?;
                    left = Expr::Sub(Box::new(left), Box::new(right));
                }
                _ => return Ok(left),
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            match self.peek() {
                TokenKind::Star => {
                    self.bump();
                    let right = self.unary_expr()?;
                    left = Expr::Mul(Box::new(left), Box::new(right));
                }
                TokenKind::Slash => {
                    self.bump();
                    match self.peek().clone() {
                        TokenKind::Int(v) if v > 0 => {
                            self.bump();
                            left = Expr::DivConst(Box::new(left), v);
                        }
                        other => {
                            return Err(self.error(format!(
                                "`/` requires a positive integer divisor, found {other}"
                            )))
                        }
                    }
                }
                _ => return Ok(left),
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                match self.peek().clone() {
                    TokenKind::Int(v) => {
                        self.bump();
                        Ok(Expr::Const(-v))
                    }
                    other => Err(self.error(format!(
                        "unary minus applies only to integer literals, found {other} \
                         (write `0 - e` for general negation)"
                    ))),
                }
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Const(v))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Var(Symbol::new(&name)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}
