//! Implementations of the `analyze`, `complexity`, and `bench` subcommands.
//!
//! Each command is a pure function from parsed options to an output string
//! (plus an exit code), so integration tests can call them without spawning
//! the binary.

use crate::json::Json;
use crate::parser::parse_program;
use chora_core::{
    complexity, AnalysisConfig, AnalysisResult, Analyzer, CacheStats, ComplexityClass, DiskStore,
    RemoteConfig, RemoteStore, SummaryStore, TieredConfig, TieredStore,
};
use chora_expr::Symbol;
use chora_ir::Program;
use std::fmt;
use std::time::Instant;

/// A command failure rendered to stderr by `main`.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Reads the program text behind a FILE argument; `-` reads stdin (so the
/// CLI accepts in-memory sources the same way the server's request path
/// does).
pub fn read_source(path: &str) -> Result<String, CliError> {
    if path == "-" {
        let mut src = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut src)
            .map_err(|e| CliError(format!("cannot read stdin: {e}")))?;
        Ok(src)
    } else {
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read `{path}`: {e}")))
    }
}

/// Parses program text, rendering errors against `name` (a path or a
/// request-supplied display name).
pub(crate) fn parse_source(name: &str, src: &str) -> Result<Program, CliError> {
    let _span = chora_telemetry::trace::span("phase", "parse");
    parse_program(src).map_err(|e| CliError(format!("{name}:{}", e.render(src))))
}

/// Opens a trace session when `--trace-out FILE` was given.  The session
/// is exclusive process-wide; the guard cleans up on error paths.
fn start_trace(
    trace_out: &Option<String>,
) -> Result<Option<chora_telemetry::trace::TraceSession>, CliError> {
    match trace_out {
        None => Ok(None),
        Some(_) => chora_telemetry::trace::start()
            .map(Some)
            .ok_or_else(|| CliError("another trace session is already recording".to_string())),
    }
}

/// Finishes the session and writes Chrome trace-event JSON to the
/// `--trace-out` path.  The summary note goes to stderr so traced and
/// untraced runs stay byte-identical on stdout.
fn write_trace(
    session: Option<chora_telemetry::trace::TraceSession>,
    trace_out: &Option<String>,
    quiet: bool,
) -> Result<(), CliError> {
    let (Some(session), Some(path)) = (session, trace_out.as_ref()) else {
        return Ok(());
    };
    let trace = session.finish();
    std::fs::write(path, trace.to_chrome_json())
        .map_err(|e| CliError(format!("cannot write trace to `{path}`: {e}")))?;
    if !quiet {
        eprintln!(
            "trace: {} spans over {} lanes -> {path}",
            trace.events.len(),
            trace.active_lanes().len()
        );
    }
    Ok(())
}

fn read_and_parse(path: &str) -> Result<Program, CliError> {
    parse_source(path, &read_source(path)?)
}

/// An analyzer configured with the requested worker count.
pub(crate) fn analyzer_with_jobs(jobs: usize) -> Analyzer {
    Analyzer::with_config(AnalysisConfig {
        jobs,
        ..AnalysisConfig::default()
    })
}

/// Options shared by the file-driven subcommands.
#[derive(Clone, Debug)]
pub struct FileOptions {
    pub path: String,
    pub json: bool,
    /// Procedure to report on (default: sole procedure, else `main`).
    pub procedure: Option<String>,
    /// Cost counter variable (default: global named `cost`, else sole global).
    pub cost_var: Option<String>,
    /// Size parameter (default: first parameter of the chosen procedure).
    pub size_param: Option<String>,
    /// Worker threads for the level-parallel driver (1 = sequential,
    /// 0 = one per core).
    pub jobs: usize,
    /// Persistent summary-cache directory (`--cache-dir`); `None` disables
    /// caching.
    pub cache_dir: Option<String>,
    /// Ignore `cache_dir` even when set (`--no-cache`).
    pub no_cache: bool,
    /// Remote fleet-cache daemons (`--remote-cache ADDR[,ADDR...]`): peer
    /// `chora serve` instances consulted as an L3 tier behind memory and
    /// disk.  `--no-cache` disables this tier too.
    pub remote_cache: Option<String>,
    /// Suppress the stderr cache/timing chatter (`--quiet`); stdout is
    /// unaffected (it never carried the chatter in the first place).
    pub quiet: bool,
    /// Record a span trace of the run and write it as Chrome trace-event
    /// JSON to this path (`--trace-out`).  Never perturbs stdout.
    pub trace_out: Option<String>,
}

impl Default for FileOptions {
    /// Matches the CLI defaults — in particular `jobs: 1` (sequential), the
    /// same default as `AnalysisConfig` and the `--jobs` flag, and no
    /// summary cache.
    fn default() -> Self {
        FileOptions {
            path: String::new(),
            json: false,
            procedure: None,
            cost_var: None,
            size_param: None,
            jobs: 1,
            cache_dir: None,
            no_cache: false,
            remote_cache: None,
            quiet: false,
            trace_out: None,
        }
    }
}

/// The store a one-shot command runs against: the bare [`DiskStore`] when
/// only `--cache-dir` is given (the long-standing behavior), or a full
/// tiered store — memory L1, optional disk L2, remote fleet L3 — when
/// `--remote-cache` names at least one peer daemon.
enum CliStore {
    Disk(DiskStore),
    Tiered(Box<TieredStore>),
}

impl CliStore {
    fn as_dyn(&self) -> &dyn SummaryStore {
        match self {
            CliStore::Disk(store) => store,
            CliStore::Tiered(store) => store.as_ref(),
        }
    }

    /// Reports the remote-tier counters on **stderr**, mirroring
    /// [`report_cache_stats`]: stdout stays byte-identical whether the
    /// fleet tier is present, absent, cold, or warm.
    fn report_remote(&self) {
        let CliStore::Tiered(tiered) = self else {
            return;
        };
        let Some(remote) = tiered.remote() else {
            return;
        };
        let targets = remote.addrs().len();
        eprintln!(
            "remote cache: {} hits, {} misses, {} stores, {} errors, {} skipped \
             ({targets} target{})",
            remote.hits(),
            remote.misses(),
            remote.stores(),
            remote.errors(),
            remote.skipped(),
            if targets == 1 { "" } else { "s" },
        );
    }
}

/// Opens the summary store requested by the options (if any).  `--no-cache`
/// disables every tier, remote included.
fn open_store(
    cache_dir: &Option<String>,
    no_cache: bool,
    remote_cache: &Option<String>,
) -> Result<Option<CliStore>, CliError> {
    if no_cache {
        return Ok(None);
    }
    let disk = match cache_dir {
        Some(dir) => Some(
            DiskStore::open(dir)
                .map_err(|e| CliError(format!("cannot open cache directory `{dir}`: {e}")))?,
        ),
        None => None,
    };
    match remote_cache {
        Some(spec) => {
            let remote =
                RemoteStore::from_spec(spec, RemoteConfig::default()).ok_or_else(|| {
                    CliError(
                        "--remote-cache expects ADDR[,ADDR...] with at least one address".into(),
                    )
                })?;
            Ok(Some(CliStore::Tiered(Box::new(TieredStore::with_remote(
                disk,
                remote,
                TieredConfig::default(),
            )))))
        }
        None => Ok(disk.map(CliStore::Disk)),
    }
}

/// Runs the analysis, through the store when one is configured.
fn run_analysis(
    analyzer: &Analyzer,
    program: &Program,
    store: Option<&dyn SummaryStore>,
) -> AnalysisResult {
    analyzer.analyze_with_store(program, store)
}

/// Reports cache counters on **stderr** — never stdout, so cached and
/// uncached runs of the same program stay byte-identical on stdout (which
/// is what the cache-determinism CI job diffs).
fn report_cache_stats(json: bool, stats: Option<&CacheStats>) {
    let Some(stats) = stats else {
        return;
    };
    if json {
        eprintln!(
            "{{\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"gc_evictions\":{}}}}}",
            stats.hits, stats.misses, stats.evictions, stats.gc_evictions
        );
    } else {
        eprintln!("summary cache: {stats}");
    }
}

/// Picks the procedure the report focuses on.
fn resolve_procedure(program: &Program, requested: Option<&str>) -> Result<String, CliError> {
    if let Some(name) = requested {
        if program.procedure(name).is_none() {
            return Err(CliError(format!(
                "no procedure named `{name}` (available: {})",
                program.procedure_names().join(", ")
            )));
        }
        return Ok(name.to_string());
    }
    let names = program.procedure_names();
    match names.as_slice() {
        [] => Err(CliError("program has no procedures".to_string())),
        [only] => Ok(only.clone()),
        _ if names.iter().any(|n| n == "main") => Ok("main".to_string()),
        _ => Err(CliError(format!(
            "program has several procedures; pick one with --proc (available: {})",
            names.join(", ")
        ))),
    }
}

fn resolve_cost_var(program: &Program, requested: Option<&str>) -> Result<Symbol, CliError> {
    if let Some(name) = requested {
        return Ok(Symbol::new(name));
    }
    if program.globals.iter().any(|g| g.to_string() == "cost") {
        return Ok(Symbol::new("cost"));
    }
    match program.globals.as_slice() {
        [only] => Ok(*only),
        _ => Err(CliError(
            "cannot infer the cost counter; pass --cost VAR".to_string(),
        )),
    }
}

fn resolve_size_param(
    program: &Program,
    proc_name: &str,
    requested: Option<&str>,
) -> Result<Symbol, CliError> {
    if let Some(name) = requested {
        return Ok(Symbol::new(name));
    }
    let proc = program
        .procedure(proc_name)
        .expect("procedure resolved earlier");
    match proc.params.first() {
        Some(p) => Ok(*p),
        None => Err(CliError(format!(
            "procedure `{proc_name}` has no parameters; pass --size PARAM"
        ))),
    }
}

/// `chora analyze FILE`: full analysis report — per-procedure summaries,
/// solved bound facts, depth bounds, and assertion verdicts.
///
/// With `--cache-dir`, summary-cache counters go to stderr (see
/// [`analyze_with_stats`] for programmatic access); stdout stays
/// byte-identical with and without the cache.
pub fn analyze(opts: &FileOptions) -> Result<(String, i32), CliError> {
    let session = start_trace(&opts.trace_out)?;
    let (output, exit, stats) = analyze_with_stats(opts)?;
    write_trace(session, &opts.trace_out, opts.quiet)?;
    if !opts.quiet {
        report_cache_stats(opts.json, stats.as_ref());
    }
    Ok((output, exit))
}

/// [`analyze`], additionally returning the cache counters (when a cache
/// directory was configured) instead of printing them.
pub fn analyze_with_stats(
    opts: &FileOptions,
) -> Result<(String, i32, Option<CacheStats>), CliError> {
    let src = read_source(&opts.path)?;
    let store = open_store(&opts.cache_dir, opts.no_cache, &opts.remote_cache)?;
    let result = analyze_source(&opts.path, &src, opts, store.as_ref().map(CliStore::as_dyn));
    if result.is_ok() && !opts.quiet {
        if let Some(store) = &store {
            store.report_remote();
        }
    }
    result
}

/// The in-memory core of `chora analyze`: program text in, report out.
///
/// `name` is the display name used for the `"file"` field and error
/// rendering (a path for the CLI, the request-supplied name for the
/// server); `store` is any [`SummaryStore`] — the CLI passes a per-run
/// [`DiskStore`], `chora serve` its resident
/// [`TieredStore`].  This is the function the
/// server calls directly, so the daemon never shells out.
///
/// The analyzer threads its per-component fresh-symbol scope assignment
/// (a [`chora_core::ScopeResolver`]) through every store operation, so
/// entries are independent of the bottom-up component order and restored
/// summaries are rescoped into the current run on load — a daemon's store
/// can therefore serve an unchanged cone to *any* program that contains
/// it, wherever the procedures sit in the file.
pub fn analyze_source(
    name: &str,
    src: &str,
    opts: &FileOptions,
    store: Option<&dyn SummaryStore>,
) -> Result<(String, i32, Option<CacheStats>), CliError> {
    analyze_program(name, &parse_source(name, src)?, opts, store)
}

/// [`analyze_source`] on an already-parsed program — the entry point for
/// callers holding a cached parse (the server's parsed-program cache).
pub fn analyze_program(
    name: &str,
    program: &Program,
    opts: &FileOptions,
    store: Option<&dyn SummaryStore>,
) -> Result<(String, i32, Option<CacheStats>), CliError> {
    let started = Instant::now();
    let result = run_analysis(&analyzer_with_jobs(opts.jobs), program, store);
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = store.is_some().then_some(result.cache);
    let (output, exit) = render_analysis(name, program, &result, opts, elapsed_ms)?;
    Ok((output, exit, stats))
}

/// Renders the `chora analyze` report from a finished [`AnalysisResult`].
/// Split from [`analyze_program`] so `/v1/batch` can analyze many programs
/// in one batched driver call and still render each element exactly as a
/// single-shot request would.
pub(crate) fn render_analysis(
    name: &str,
    program: &Program,
    result: &AnalysisResult,
    opts: &FileOptions,
    elapsed_ms: f64,
) -> Result<(String, i32), CliError> {
    // With --proc the report is restricted to that procedure (and its
    // assertions); the analysis itself is always whole-program.
    let focus = match opts.procedure.as_deref() {
        Some(requested) => Some(resolve_procedure(program, Some(requested))?),
        None => None,
    };

    let report_names: Vec<String> = match &focus {
        Some(name) => vec![name.clone()],
        None => program.procedure_names(),
    };
    let assertions: Vec<_> = result
        .assertions
        .iter()
        .filter(|a| focus.as_deref().is_none_or(|f| a.procedure == f))
        .collect();
    let all_verified = assertions.iter().all(|a| a.verified);
    // Exit 1 when an assertion fails to verify, so scripts can gate on it.
    let exit = if all_verified { 0 } else { 1 };

    if opts.json {
        let mut procedures = Vec::new();
        for name in &report_names {
            let Some(summary) = result.summary(name) else {
                continue;
            };
            let mut facts = Vec::new();
            for fact in &summary.bound_facts {
                facts.push(
                    Json::object()
                        .field("term", Json::str(fact.term.to_string()))
                        .field("closed_form", Json::str(fact.closed_form.to_string()))
                        .field(
                            "bound",
                            match &fact.bound {
                                Some(b) => Json::str(b.to_string()),
                                None => Json::Null,
                            },
                        )
                        .field("exact", Json::Bool(fact.exact)),
                );
            }
            procedures.push(
                Json::object()
                    .field("name", Json::str(name.as_str()))
                    .field("recursive", Json::Bool(summary.recursive))
                    .field(
                        "depth_bound",
                        match &summary.depth {
                            Some(d) => Json::str(d.to_term().to_string()),
                            None => Json::Null,
                        },
                    )
                    .field("bound_facts", Json::Array(facts)),
            );
        }
        let assertions: Vec<Json> = assertions
            .iter()
            .map(|a| {
                Json::object()
                    .field("procedure", Json::str(&a.procedure))
                    .field("label", Json::str(&a.label))
                    .field("verified", Json::Bool(a.verified))
            })
            .collect();
        let doc = Json::object()
            .field("file", Json::str(name))
            .field("procedures", Json::Array(procedures))
            .field("assertions", Json::Array(assertions))
            .field("all_assertions_verified", Json::Bool(all_verified))
            .field("analysis_ms", Json::Float(elapsed_ms));
        return Ok((doc.pretty(), exit));
    }

    let mut out = String::new();
    out.push_str(&format!("analyzed {name} in {elapsed_ms:.1} ms\n\n"));
    for name in &report_names {
        let Some(summary) = result.summary(name) else {
            continue;
        };
        let kind = if summary.recursive {
            "recursive"
        } else {
            "non-recursive"
        };
        out.push_str(&format!("procedure {name} ({kind})\n"));
        if let Some(depth) = &summary.depth {
            out.push_str(&format!("  depth bound: {}\n", depth.to_term()));
        }
        for fact in &summary.bound_facts {
            let exact = if fact.exact { "exact" } else { "over-approx" };
            out.push_str(&format!(
                "  bound fact ({exact}): {} <= {}\n",
                fact.term, fact.closed_form
            ));
            if let Some(bound) = &fact.bound {
                out.push_str(&format!("    at depth bound: {bound}\n"));
            }
        }
        out.push('\n');
    }
    if assertions.is_empty() {
        out.push_str("no assertions\n");
    } else {
        for a in &assertions {
            let verdict = if a.verified { "verified" } else { "NOT PROVED" };
            out.push_str(&format!(
                "assert [{}] {}: {verdict}\n",
                a.procedure, a.label
            ));
        }
        out.push_str(&format!(
            "\n{}\n",
            if all_verified {
                "all assertions verified"
            } else {
                "some assertions were not proved"
            }
        ));
    }
    Ok((out, exit))
}

/// `chora complexity FILE`: resource-bound extraction — the Table 1 view of
/// one procedure.
pub fn complexity_cmd(opts: &FileOptions) -> Result<(String, i32), CliError> {
    let session = start_trace(&opts.trace_out)?;
    let src = read_source(&opts.path)?;
    let store = open_store(&opts.cache_dir, opts.no_cache, &opts.remote_cache)?;
    let (output, exit, stats) =
        complexity_source(&opts.path, &src, opts, store.as_ref().map(CliStore::as_dyn))?;
    if !opts.quiet {
        if let Some(store) = &store {
            store.report_remote();
        }
    }
    write_trace(session, &opts.trace_out, opts.quiet)?;
    if !opts.quiet {
        report_cache_stats(opts.json, stats.as_ref());
    }
    Ok((output, exit))
}

/// The in-memory core of `chora complexity` — see [`analyze_source`] for
/// the `name`/`store` contract.
pub fn complexity_source(
    name: &str,
    src: &str,
    opts: &FileOptions,
    store: Option<&dyn SummaryStore>,
) -> Result<(String, i32, Option<CacheStats>), CliError> {
    complexity_program(name, &parse_source(name, src)?, opts, store)
}

/// [`complexity_source`] on an already-parsed program — see
/// [`analyze_program`].
pub fn complexity_program(
    name: &str,
    program: &Program,
    opts: &FileOptions,
    store: Option<&dyn SummaryStore>,
) -> Result<(String, i32, Option<CacheStats>), CliError> {
    let started = Instant::now();
    let result = run_analysis(&analyzer_with_jobs(opts.jobs), program, store);
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = store.is_some().then_some(result.cache);
    let (output, exit) = render_complexity(name, program, &result, opts, elapsed_ms)?;
    Ok((output, exit, stats))
}

/// Renders the `chora complexity` report from a finished
/// [`AnalysisResult`] — see [`render_analysis`].
pub(crate) fn render_complexity(
    name: &str,
    program: &Program,
    result: &AnalysisResult,
    opts: &FileOptions,
    elapsed_ms: f64,
) -> Result<(String, i32), CliError> {
    let proc_name = resolve_procedure(program, opts.procedure.as_deref())?;
    let cost = resolve_cost_var(program, opts.cost_var.as_deref())?;
    let size = resolve_size_param(program, &proc_name, opts.size_param.as_deref())?;

    let summary = result
        .summary(&proc_name)
        .ok_or_else(|| CliError(format!("no summary computed for `{proc_name}`")))?;
    let (bound, class) = complexity::table1_row(summary, &cost, &size);
    let exit = if matches!(class, ComplexityClass::NoBound) {
        1
    } else {
        0
    };

    if opts.json {
        let doc = Json::object()
            .field("file", Json::str(name))
            .field("procedure", Json::str(&proc_name))
            .field("cost_var", Json::str(cost.to_string()))
            .field("size_param", Json::str(size.to_string()))
            .field(
                "bound",
                match &bound {
                    Some(b) => Json::str(b.to_string()),
                    None => Json::Null,
                },
            )
            .field("class", Json::str(class.to_string()))
            .field("analysis_ms", Json::Float(elapsed_ms));
        return Ok((doc.pretty(), exit));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{name}: procedure {proc_name}, cost {cost}, size {size}\n"
    ));
    match &bound {
        Some(b) => out.push_str(&format!("  bound: {cost}' <= {b}\n")),
        None => out.push_str("  bound: none found\n"),
    }
    out.push_str(&format!("  class: {class}\n"));
    out.push_str(&format!("  analysis time: {elapsed_ms:.1} ms\n"));
    Ok((out, exit))
}

/// Options for `chora bench`.
#[derive(Clone, Debug)]
pub struct BenchOptions {
    pub json: bool,
    /// Substring filter on benchmark names.
    pub filter: Option<String>,
    /// Worker threads per analysis (1 = sequential, 0 = one per core).
    pub jobs: usize,
    /// Optional directory of `.imp` programs to analyze and time in
    /// addition to the built-in suites.
    pub programs_dir: Option<String>,
    /// Summary-cache directory: programs are analyzed twice (cold, then
    /// warm) and both wall-clocks are reported.
    pub cache_dir: Option<String>,
    /// Ignore `cache_dir` even when set.
    pub no_cache: bool,
    /// Remote fleet-cache daemons consulted as an L3 tier — see
    /// [`FileOptions::remote_cache`].
    pub remote_cache: Option<String>,
    /// Benchmark through a live in-process `chora serve` daemon instead of
    /// calling the library: requests/sec cold vs warm over real HTTP
    /// (`bench --server DIR`).
    pub server: bool,
    /// Record a span trace of the whole bench run and write it as Chrome
    /// trace-event JSON to this path (`--trace-out`).
    pub trace_out: Option<String>,
}

impl Default for BenchOptions {
    /// Matches the CLI defaults — in particular `jobs: 1` (sequential).
    fn default() -> Self {
        BenchOptions {
            json: false,
            filter: None,
            jobs: 1,
            programs_dir: None,
            cache_dir: None,
            no_cache: false,
            remote_cache: None,
            server: false,
            trace_out: None,
        }
    }
}

/// One timed program row of `chora bench [DIR]`.
struct ProgramRow {
    name: String,
    procedures: usize,
    verified: bool,
    parse_ms: f64,
    analysis_ms: f64,
    timings: chora_core::PhaseTimings,
    /// `(warm wall-clock, warm cache counters)` when a cache directory is
    /// configured; `analysis_ms` is then the *cold* run.
    warm: Option<(f64, CacheStats)>,
}

/// `chora bench`: reruns the paper's built-in benchmark suites (Table 1
/// complexity rows and the assertion benchmarks) with wall-clock timings.
pub fn bench(opts: &BenchOptions) -> Result<(String, i32), CliError> {
    if opts.server {
        return crate::serve::bench_server(opts);
    }
    let session = start_trace(&opts.trace_out)?;
    let result = bench_local(opts);
    write_trace(session, &opts.trace_out, false)?;
    result
}

/// The library-call (non `--server`) body of [`bench`].
fn bench_local(opts: &BenchOptions) -> Result<(String, i32), CliError> {
    let keep = |name: &str| match &opts.filter {
        Some(f) => name.contains(f.as_str()),
        None => true,
    };

    let mut rows = Vec::new();
    for b in chora_bench_suite::complexity_suite::all() {
        if !keep(b.name) {
            continue;
        }
        let started = Instant::now();
        let (_bound, class) = chora_bench::table1_row_for(&b);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        rows.push((b.name, b.actual, class, b.paper_chora, elapsed_ms));
    }

    let mut assertion_rows = Vec::new();
    for b in chora_bench_suite::assertion_suite::all() {
        if !keep(b.name) {
            continue;
        }
        let started = Instant::now();
        let result = analyzer_with_jobs(opts.jobs).analyze(&b.program);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        assertion_rows.push((
            b.name,
            result.all_assertions_verified(),
            b.paper_chora,
            elapsed_ms,
            result.timings,
        ));
    }

    // Optional directory of .imp programs: parse + analyze each, with
    // per-phase wall-clock timings — the on-disk counterpart of the
    // built-in suites.  With --cache-dir every program is analyzed twice
    // (cold, then warm) so the cache win is directly visible.
    let store = open_store(&opts.cache_dir, opts.no_cache, &opts.remote_cache)?;
    let mut program_rows: Vec<ProgramRow> = Vec::new();
    if let Some(dir) = &opts.programs_dir {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| CliError(format!("cannot read directory `{dir}`: {e}")))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "imp"))
            .collect();
        paths.sort();
        for path in paths {
            let display = path.display().to_string();
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| display.clone());
            if !keep(&name) {
                continue;
            }
            let parse_started = Instant::now();
            let program = read_and_parse(&display)?;
            let parse_ms = parse_started.elapsed().as_secs_f64() * 1e3;
            let analyzer = analyzer_with_jobs(opts.jobs);
            let started = Instant::now();
            let result = run_analysis(&analyzer, &program, store.as_ref().map(CliStore::as_dyn));
            let analysis_ms = started.elapsed().as_secs_f64() * 1e3;
            let warm = store.as_ref().map(|s| {
                let warm_started = Instant::now();
                let warm_result = run_analysis(&analyzer, &program, Some(s.as_dyn()));
                (
                    warm_started.elapsed().as_secs_f64() * 1e3,
                    warm_result.cache,
                )
            });
            program_rows.push(ProgramRow {
                name,
                procedures: result.summaries.len(),
                verified: result.all_assertions_verified(),
                parse_ms,
                analysis_ms,
                timings: result.timings,
                warm,
            });
        }
    }

    if let Some(store) = &store {
        store.report_remote();
    }

    if rows.is_empty() && assertion_rows.is_empty() && program_rows.is_empty() {
        return Err(CliError(format!(
            "no benchmark matches filter `{}`",
            opts.filter.as_deref().unwrap_or("")
        )));
    }

    if opts.json {
        let complexity_json: Vec<Json> = rows
            .iter()
            .map(|(name, actual, class, paper, ms)| {
                Json::object()
                    .field("name", Json::str(*name))
                    .field("actual", Json::str(*actual))
                    .field("class", Json::str(class.clone()))
                    .field("paper_chora", Json::str(*paper))
                    .field("analysis_ms", Json::Float(*ms))
            })
            .collect();
        let assertion_json: Vec<Json> = assertion_rows
            .iter()
            .map(|(name, verified, paper, ms, timings)| {
                Json::object()
                    .field("name", Json::str(*name))
                    .field("verified", Json::Bool(*verified))
                    .field("paper_chora", Json::Bool(*paper))
                    .field("analysis_ms", Json::Float(*ms))
                    .field("phases", phases_json(None, timings))
            })
            .collect();
        let program_json: Vec<Json> = program_rows
            .iter()
            .map(|row| {
                let mut doc = Json::object()
                    .field("name", Json::str(&row.name))
                    .field("procedures", Json::Int(row.procedures as i64))
                    .field("all_assertions_verified", Json::Bool(row.verified))
                    .field("analysis_ms", Json::Float(row.analysis_ms))
                    .field("phases", phases_json(Some(row.parse_ms), &row.timings));
                if let Some((warm_ms, cache)) = &row.warm {
                    doc = doc
                        .field("cold_ms", Json::Float(row.analysis_ms))
                        .field("warm_ms", Json::Float(*warm_ms))
                        .field(
                            "warm_cache",
                            Json::object()
                                .field("hits", Json::Int(cache.hits as i64))
                                .field("misses", Json::Int(cache.misses as i64))
                                .field("evictions", Json::Int(cache.evictions as i64)),
                        );
                }
                doc
            })
            .collect();
        let doc = Json::object()
            .field("complexity", Json::Array(complexity_json))
            .field("assertions", Json::Array(assertion_json))
            .field("programs", Json::Array(program_json));
        return Ok((doc.pretty(), 0));
    }

    let mut out = String::new();
    if !rows.is_empty() {
        out.push_str(&format!(
            "{:<14} {:<14} {:<16} {:<14} {:>10}\n",
            "benchmark", "actual", "CHORA-rs", "paper CHORA", "time"
        ));
        for (name, actual, class, paper, ms) in &rows {
            out.push_str(&format!(
                "{name:<14} {actual:<14} {class:<16} {paper:<14} {ms:>8.1}ms\n"
            ));
        }
    }
    if !assertion_rows.is_empty() {
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "{:<18} {:<10} {:<12} {:>10}  {}\n",
            "assertion bench", "CHORA-rs", "paper CHORA", "time", "phases (summ/solve/check)"
        ));
        for (name, verified, paper, ms, t) in &assertion_rows {
            let v = if *verified { "proved" } else { "n.p." };
            let p = if *paper { "proved" } else { "n.p." };
            out.push_str(&format!(
                "{name:<18} {v:<10} {p:<12} {ms:>8.1}ms  {:.1}/{:.1}/{:.1}ms\n",
                t.summarize_ms, t.solve_ms, t.check_ms
            ));
        }
    }
    if !program_rows.is_empty() {
        if !rows.is_empty() || !assertion_rows.is_empty() {
            out.push('\n');
        }
        let cached = program_rows.iter().any(|r| r.warm.is_some());
        let time_heading = if cached { "cold" } else { "time" };
        out.push_str(&format!(
            "{:<18} {:<12} {:<12} {:>10}  {}\n",
            "program", "procedures", "assertions", time_heading, "phases (parse/summ/solve/check)"
        ));
        for row in &program_rows {
            let v = if row.verified { "verified" } else { "n.p." };
            out.push_str(&format!(
                "{:<18} {:<12} {v:<12} {:>8.1}ms  {:.1}/{:.1}/{:.1}/{:.1}ms",
                row.name,
                row.procedures,
                row.analysis_ms,
                row.parse_ms,
                row.timings.summarize_ms,
                row.timings.solve_ms,
                row.timings.check_ms
            ));
            if let Some((warm_ms, cache)) = &row.warm {
                out.push_str(&format!(
                    "  warm {warm_ms:.1}ms ({} hits, {} misses)",
                    cache.hits, cache.misses
                ));
            }
            out.push('\n');
        }
    }
    Ok((out, 0))
}

/// The per-phase timing object of one bench row.
fn phases_json(parse_ms: Option<f64>, t: &chora_core::PhaseTimings) -> Json {
    let mut doc = Json::object();
    if let Some(parse_ms) = parse_ms {
        doc = doc.field("parse_ms", Json::Float(parse_ms));
    }
    doc.field("summarize_ms", Json::Float(t.summarize_ms))
        .field("solve_ms", Json::Float(t.solve_ms))
        .field("check_ms", Json::Float(t.check_ms))
}

/// `chora print FILE`: parse and pretty-print back (the round-trip surface).
pub fn print_cmd(path: &str) -> Result<(String, i32), CliError> {
    let program = read_and_parse(path)?;
    Ok((crate::printer::print_program(&program), 0))
}
