//! # chora-cli
//!
//! File-driven front-end for the CHORA analyzer: a small textual imperative
//! language (`.imp`) with procedures, integer globals, `if`/`while`,
//! (recursive) calls, `assume`/`assert`, and non-determinism, lowered to
//! [`chora_ir::Program`] and analyzed by [`chora_core::Analyzer`].
//!
//! ```text
//! // examples/programs/hanoi.imp
//! global cost;
//!
//! proc hanoi(n) {
//!     cost := cost + 1;
//!     if (n > 0) {
//!         hanoi(n - 1);
//!         hanoi(n - 1);
//!     }
//! }
//! ```
//!
//! Subcommands (see `chora --help`):
//!
//! * `analyze FILE` — full report: summaries, bound facts, depth bounds, and
//!   assertion verdicts,
//! * `complexity FILE` — the Table 1 view: a closed-form cost bound and its
//!   asymptotic class,
//! * `bench` — rerun the built-in paper benchmark suites with timings
//!   (`--server` replays programs through a live daemon instead),
//! * `print FILE` — parse and pretty-print (the round-trip surface),
//! * `serve` — a long-running analysis daemon over keep-alive HTTP with a
//!   resident tiered summary store, a parsed-program cache, and a
//!   rendered-response cache (see the [`serve`] module),
//! * `request ENDPOINT [FILE...]` — one HTTP round-trip against `chora
//!   serve` (the `batch` endpoint takes several FILEs and analyzes them in
//!   one request).
//!
//! All file-driven subcommands accept `--json` for machine-readable output
//! and `-` as FILE to read the program from stdin.

pub mod driver;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod progcache;
pub mod serve;

pub use driver::{
    analyze, analyze_program, analyze_source, analyze_with_stats, bench, complexity_cmd,
    complexity_program, complexity_source, print_cmd, read_source, BenchOptions, CliError,
    FileOptions,
};
pub use lexer::ParseError;
pub use parser::parse_program;
pub use printer::{print_cond, print_expr, print_program};
pub use serve::{
    request, serve as serve_cmd, spawn_server, AnalysisService, RequestOptions, ServeOptions,
};
