//! The `chora` binary: argument parsing and dispatch.

use chora_cli::{
    analyze, bench, complexity_cmd, print_cmd, request, serve_cmd, BenchOptions, FileOptions,
    RequestOptions, ServeOptions,
};
use std::process::ExitCode;

const USAGE: &str = "\
chora — CHORA resource-bound analyzer (PLDI 2020 reproduction)

USAGE:
    chora <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    analyze FILE      Analyze a .imp program: procedure summaries, bound
                      facts, depth bounds, and assertion verdicts
    complexity FILE   Extract a closed-form cost bound and asymptotic class
    bench [DIR]       Rerun the built-in paper benchmark suites (and time
                      every .imp program under DIR, when given)
    print FILE        Parse a .imp program and pretty-print it back
    serve             Long-running analysis daemon: POST .imp sources to
                      /v1/analyze and /v1/complexity over keep-alive HTTP
                      and get the exact --json documents back, served from
                      a resident tiered (memory + disk) summary store plus
                      parsed-program and rendered-response caches;
                      /v1/batch analyzes a JSON array of programs in one
                      round trip
    request ENDPOINT [FILE...]
                      One round-trip against a running `chora serve`:
                      analyze, complexity (send one FILE), batch (send any
                      number of FILEs in one request), healthz, stats,
                      shutdown (no FILE)

FILE may be `-` to read the program from stdin (analyze/complexity/print/
request).

OPTIONS (analyze / complexity / bench):
    --json            Emit machine-readable JSON
    --jobs N          Summarize independent call-graph components on N
                      worker threads (default 1; 0 = one per core).  The
                      output is identical for every N
    --cache-dir PATH  Persistent summary cache: procedure summaries are
                      stored content-addressed by a structural hash of the
                      procedure and its callee cone, so re-analyses of a
                      lightly-edited program only re-summarize the changed
                      cone.  Cache counters (hits/misses/evictions) print
                      on stderr; stdout is byte-identical with and without
                      the cache.  `bench` runs each program cold and warm
    --no-cache        Ignore --cache-dir and --remote-cache (force a full
                      analysis)
    --remote-cache ADDR[,ADDR...]
                      Consult peer `chora serve` daemons as a remote L3
                      summary tier behind memory and disk; keys are spread
                      over the ADDRs by rendezvous hashing.  Unreachable
                      peers are skipped — output is byte-identical with the
                      fleet tier on, off, cold, or warm
    --quiet           Suppress the stderr cache/timing chatter
    --proc NAME       Procedure to report on (default: all for analyze;
                      sole procedure or main for complexity)
    --trace-out FILE  Record a span trace of the run (parse, summarize,
                      solve, FM projection, cache, scheduler lanes) and
                      write Chrome trace-event JSON to FILE — open it in
                      chrome://tracing or Perfetto.  Stdout is unchanged

OPTIONS (complexity only):
    --cost VAR        Cost counter variable (default: global `cost`)
    --size PARAM      Size parameter (default: first parameter of the proc)

OPTIONS (bench):
    --filter SUBSTR   Only run benchmarks whose name contains SUBSTR
    --server          Replay DIR's programs through a live in-process
                      daemon over HTTP and report req/s cold vs warm

OPTIONS (serve):
    --addr HOST:PORT  Bind address (default 127.0.0.1:7557)
    --jobs N          Request worker threads (default 0 = one per core)
    --cache-dir PATH  Disk tier of the summary store (memory-only without)
    --cache-cap-bytes BYTES[K|M|G]
                      Store byte budget (default 64M; 0 = unbounded)
    --cache-max-age SECS[s|m|h]
                      Evict entries older than this (default: never)
    --remote-cache ADDR[,ADDR...]
                      Peer daemons used as a remote L3 summary tier (fleet
                      mode); this daemon also serves its own store to peers
                      via GET/PUT /v1/summaries/{key}
    --quiet           Suppress per-request logging
    --log-format text|json
                      Per-request log line shape (default text)
    --slow-request-ms MS
                      Log requests at or past MS even under --quiet,
                      marked as slow

OPTIONS (request):
    --addr HOST:PORT  Daemon to contact (default 127.0.0.1:7557)
    --jobs/--proc/--cost/--size
                      Forwarded to the endpoint as query parameters
    --quiet           Accepted for scripting symmetry (request has no
                      stderr chatter of its own)

EXAMPLES:
    chora complexity examples/programs/hanoi.imp --json
    chora analyze examples/programs/merge-sort.imp --jobs 4
    chora analyze - < examples/programs/height.imp
    chora bench --json --cache-dir /tmp/chora-cache examples/programs
    chora serve --addr 127.0.0.1:7557 --jobs 8 --cache-dir /tmp/chora-cache
    chora request analyze examples/programs/hanoi.imp
    chora request batch examples/programs/*.imp
    chora bench --server --json examples/programs
";

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = args.remove(i + 1);
        args.remove(i);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn take_jobs(args: &mut Vec<String>) -> Result<usize, String> {
    match take_value(args, "--jobs")? {
        None => Ok(1),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--jobs expects a non-negative integer, got `{v}`")),
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn run() -> Result<(String, i32), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        return Ok((USAGE.to_string(), 0));
    }
    let subcommand = args.remove(0);
    match subcommand.as_str() {
        "analyze" | "complexity" => {
            let json = take_flag(&mut args, "--json");
            let jobs = take_jobs(&mut args)?;
            let procedure = take_value(&mut args, "--proc")?;
            let cost_var = take_value(&mut args, "--cost")?;
            let size_param = take_value(&mut args, "--size")?;
            let cache_dir = take_value(&mut args, "--cache-dir")?;
            let no_cache = take_flag(&mut args, "--no-cache");
            let remote_cache = take_value(&mut args, "--remote-cache")?;
            let quiet = take_flag(&mut args, "--quiet");
            let trace_out = take_value(&mut args, "--trace-out")?;
            if subcommand == "analyze" && (cost_var.is_some() || size_param.is_some()) {
                return Err("--cost and --size only apply to `chora complexity`".to_string());
            }
            let [path] = args.as_slice() else {
                return Err(format!(
                    "`chora {subcommand}` expects exactly one FILE argument; \
                     run `chora --help`"
                ));
            };
            let opts = FileOptions {
                path: path.clone(),
                json,
                procedure,
                cost_var,
                size_param,
                jobs,
                cache_dir,
                no_cache,
                remote_cache,
                quiet,
                trace_out,
            };
            let result = if subcommand == "analyze" {
                analyze(&opts)
            } else {
                complexity_cmd(&opts)
            };
            result.map_err(|e| e.to_string())
        }
        "bench" => {
            let json = take_flag(&mut args, "--json");
            let jobs = take_jobs(&mut args)?;
            let filter = take_value(&mut args, "--filter")?;
            let cache_dir = take_value(&mut args, "--cache-dir")?;
            let no_cache = take_flag(&mut args, "--no-cache");
            let remote_cache = take_value(&mut args, "--remote-cache")?;
            let server = take_flag(&mut args, "--server");
            let trace_out = take_value(&mut args, "--trace-out")?;
            let programs_dir = match args.as_slice() {
                [] => None,
                [dir] => Some(dir.clone()),
                _ => return Err(format!("unexpected arguments: {}", args.join(" "))),
            };
            bench(&BenchOptions {
                json,
                filter,
                jobs,
                programs_dir,
                cache_dir,
                no_cache,
                remote_cache,
                server,
                trace_out,
            })
            .map_err(|e| e.to_string())
        }
        "print" => {
            let [path] = args.as_slice() else {
                return Err("`chora print` expects exactly one FILE argument".to_string());
            };
            print_cmd(path).map_err(|e| e.to_string())
        }
        "serve" => {
            let addr =
                take_value(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7557".to_string());
            let jobs = match take_value(&mut args, "--jobs")? {
                None => 0,
                Some(v) => v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs expects a non-negative integer, got `{v}`"))?,
            };
            let cache_dir = take_value(&mut args, "--cache-dir")?;
            let cache_cap_bytes = match take_value(&mut args, "--cache-cap-bytes")? {
                None => None,
                Some(v) => Some(chora_cli::serve::parse_cap_bytes(&v)?),
            };
            let cache_max_age = match take_value(&mut args, "--cache-max-age")? {
                None => None,
                Some(v) => Some(chora_cli::serve::parse_max_age(&v)?),
            };
            let remote_cache = take_value(&mut args, "--remote-cache")?;
            let quiet = take_flag(&mut args, "--quiet");
            let log_format = match take_value(&mut args, "--log-format")? {
                None => chora_server::LogFormat::Text,
                Some(v) => v.parse::<chora_server::LogFormat>()?,
            };
            let slow_request_ms = match take_value(&mut args, "--slow-request-ms")? {
                None => None,
                Some(v) => Some(v.parse::<f64>().map_err(|_| {
                    format!("--slow-request-ms expects a number of milliseconds, got `{v}`")
                })?),
            };
            if !args.is_empty() {
                return Err(format!("unexpected arguments: {}", args.join(" ")));
            }
            serve_cmd(&ServeOptions {
                addr,
                jobs,
                cache_dir,
                cache_cap_bytes,
                cache_max_age,
                remote_cache,
                quiet,
                log_format,
                slow_request_ms,
            })
            .map_err(|e| e.to_string())
        }
        "request" => {
            let addr =
                take_value(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7557".to_string());
            let jobs = match take_value(&mut args, "--jobs")? {
                None => None,
                Some(v) => Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--jobs expects a non-negative integer, got `{v}`"))?,
                ),
            };
            let procedure = take_value(&mut args, "--proc")?;
            let cost_var = take_value(&mut args, "--cost")?;
            let size_param = take_value(&mut args, "--size")?;
            // Accepted for scripting symmetry with the other subcommands;
            // `request` has no stderr chatter of its own to silence.
            let _ = take_flag(&mut args, "--quiet");
            if args.is_empty() {
                return Err(
                    "`chora request` expects ENDPOINT [FILE...]; run `chora --help`".to_string(),
                );
            }
            let endpoint = args.remove(0);
            request(&RequestOptions {
                endpoint,
                files: args,
                addr,
                jobs,
                procedure,
                cost_var,
                size_param,
            })
            .map_err(|e| e.to_string())
        }
        other => Err(format!("unknown subcommand `{other}`; run `chora --help`")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok((output, code)) => {
            print!("{output}");
            ExitCode::from(code as u8)
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
