//! In-memory request caches for the server backend: a parsed-program
//! cache (source bytes → [`chora_ir::Program`]) and a rendered-response cache
//! (endpoint + query + source → finished JSON document).
//!
//! Both are instances of one sharded LRU ([`ShardedLru`]), the in-memory
//! idiom of the summary store's tiered cache: entries are keyed by a
//! 128-bit content fingerprint, shards are independent mutexes (so
//! worker threads rarely contend), recency is a per-shard logical tick,
//! and a byte-cost cap evicts least-recently-used entries per shard.
//! Keys are content hashes, so two clients posting the same `.imp`
//! source share entries — and an edited source simply misses.

use chora_ir::{Fingerprint, FingerprintBuilder};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independent shards (a power of two; the shard index is the
/// key's low bits, which are uniformly mixed by the fingerprint hash).
const SHARDS: usize = 16;

struct Entry<V> {
    value: V,
    cost: u64,
    last_used: u64,
}

struct Shard<V> {
    map: HashMap<u128, Entry<V>>,
    bytes: u64,
    tick: u64,
}

/// A sharded, byte-capped LRU keyed by [`Fingerprint`], with hit/miss
/// counters for `/v1/stats`.  Values are cloned out on hit, so cheap
/// handles (`Arc<Program>`, `Arc<str>`) are the intended value types.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// Byte budget per shard (total budget / `SHARDS`).
    shard_cap: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> ShardedLru<V> {
    /// Creates a cache holding at most `max_bytes` of summed entry cost.
    pub fn new(max_bytes: u64) -> ShardedLru<V> {
        ShardedLru {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        bytes: 0,
                        tick: 0,
                    })
                })
                .collect(),
            shard_cap: (max_bytes / SHARDS as u64).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: Fingerprint) -> &Mutex<Shard<V>> {
        &self.shards[key.0 as usize % SHARDS]
    }

    /// Looks up `key`, refreshing its recency and counting a hit or miss.
    pub fn get(&self, key: Fingerprint) -> Option<V> {
        let mut shard = self.shard(key).lock().expect("cache shard");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key.0) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` with an explicit byte cost, evicting the shard's
    /// least-recently-used entries until it fits.  An entry larger than a
    /// whole shard is simply not cached.
    pub fn put(&self, key: Fingerprint, value: V, cost: u64) {
        if cost > self.shard_cap {
            return;
        }
        let mut shard = self.shard(key).lock().expect("cache shard");
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(old) = shard.map.insert(
            key.0,
            Entry {
                value,
                cost,
                last_used: tick,
            },
        ) {
            shard.bytes -= old.cost;
        }
        shard.bytes += cost;
        while shard.bytes > self.shard_cap {
            let oldest = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty shard over its cap");
            if let Some(evicted) = shard.map.remove(&oldest) {
                shard.bytes -= evicted.cost;
            }
        }
    }

    /// Total hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Current number of cached entries (a gauge, racy across shards).
    pub fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").map.len() as u64)
            .sum()
    }
}

/// The cache key of a source text (parsed-program cache).
pub fn source_key(source: &str) -> Fingerprint {
    let mut b = FingerprintBuilder::new();
    b.write_str("chora-progcache-source-v1");
    b.write_str(source);
    b.finish()
}

/// The cache key of a rendered response: endpoint, the query pairs that
/// influence the output (sorted, so parameter order does not split the
/// cache), and the source fingerprint.  `jobs` is deliberately excluded —
/// the analysis result is identical for every worker count (a repo
/// invariant the analyzer tests pin down), only wall-clock changes, and
/// timing fields are not part of response keys' byte-identity contract.
pub fn response_key(
    endpoint: &str,
    query: &[(String, String)],
    source: Fingerprint,
) -> Fingerprint {
    let mut pairs: Vec<&(String, String)> = query.iter().filter(|(k, _)| k != "jobs").collect();
    pairs.sort();
    let mut b = FingerprintBuilder::new();
    b.write_str("chora-progcache-response-v1");
    b.write_str(endpoint);
    b.write_u64(pairs.len() as u64);
    for (k, v) in pairs {
        b.write_str(k);
        b.write_str(v);
    }
    b.write_fingerprint(source);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let cache: ShardedLru<String> = ShardedLru::new(1 << 20);
        let key = source_key("procedure main() {}");
        assert_eq!(cache.get(key), None);
        cache.put(key, "doc".to_string(), 3);
        assert_eq!(cache.get(key).as_deref(), Some("doc"));
        assert_eq!((cache.hits(), cache.misses(), cache.entries()), (1, 1, 1));
    }

    #[test]
    fn the_byte_cap_evicts_least_recently_used_entries() {
        // One shard's worth of keys: force same-shard keys so the eviction
        // order is observable.
        let cache: ShardedLru<u32> = ShardedLru::new(16 * 10);
        let key = |i: u128| Fingerprint(i * SHARDS as u128); // all in shard 0
        for i in 0..2 {
            cache.put(key(i), i as u32, 4);
        }
        assert!(cache.get(key(0)).is_some(), "refresh key 0");
        cache.put(key(2), 2, 4); // 12 bytes > 10: evicts key 1 (LRU), not 0
        assert_eq!(cache.get(key(1)), None, "LRU entry evicted");
        assert!(cache.get(key(0)).is_some());
        assert!(cache.get(key(2)).is_some());
        // Oversized entries are refused outright.
        cache.put(key(3), 3, 1 << 20);
        assert_eq!(cache.get(key(3)), None);
    }

    #[test]
    fn response_keys_ignore_jobs_and_pair_order() {
        let src = source_key("x");
        let q1 = vec![
            ("proc".to_string(), "main".to_string()),
            ("jobs".to_string(), "4".to_string()),
            ("cost".to_string(), "cost".to_string()),
        ];
        let q2 = vec![
            ("cost".to_string(), "cost".to_string()),
            ("proc".to_string(), "main".to_string()),
            ("jobs".to_string(), "1".to_string()),
        ];
        assert_eq!(
            response_key("/v1/analyze", &q1, src),
            response_key("/v1/analyze", &q2, src)
        );
        let q3 = vec![("proc".to_string(), "other".to_string())];
        assert_ne!(
            response_key("/v1/analyze", &q1, src),
            response_key("/v1/analyze", &q3, src)
        );
        assert_ne!(
            response_key("/v1/analyze", &q1, src),
            response_key("/v1/complexity", &q1, src)
        );
        assert_ne!(
            response_key("/v1/analyze", &q1, src),
            response_key("/v1/analyze", &q1, source_key("y"))
        );
    }
}
