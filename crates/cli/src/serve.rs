//! `chora serve` and `chora request`: the analysis-as-a-service wiring.
//!
//! [`AnalysisService`] implements [`chora_server::AnalysisBackend`] on top
//! of the factored driver ([`analyze_program`]/[`complexity_program`]) and
//! three resident caches:
//!
//! * a [`TieredStore`] of component summaries (memory + optional disk),
//! * a parsed-program cache (source bytes → [`chora_ir::Program`]), so a re-posted
//!   source skips the lexer/parser entirely,
//! * a rendered-response cache (endpoint + query + source → finished JSON
//!   document), so a fully warm request costs one content hash and two
//!   map lookups — no analysis at all.
//!
//! Sound because analysis output is deterministic: the same endpoint,
//! query (minus `jobs`, which never changes the result), and source bytes
//! always render the same document (timing fields aside).  Response
//! payloads are the *identical* JSON documents the `analyze
//! --json`/`complexity --json` subcommands print (the CI `server-smoke`
//! job diffs them byte-for-byte, timing fields aside), and `/v1/batch`
//! elements are byte-identical to the matching single-shot responses.

use crate::driver::{
    analyze_program, analyzer_with_jobs, complexity_program, parse_source, read_source,
    render_analysis, BenchOptions, CliError, FileOptions,
};
use crate::json::Json;
use crate::progcache::{response_key, source_key, ShardedLru};
use chora_core::{
    entry_key, DiskStore, FlightCounters, ProcedureSummary, RemoteConfig, RemoteStore,
    ScopeResolver, SingleFlight, StoreStats, SummaryStore, TierCounters, TieredConfig, TieredStore,
};
use chora_ir::{Fingerprint, Program};
use chora_server::client::Client;
use chora_server::http::{encode_query_component, json_string};
use chora_server::router::Endpoint;
use chora_server::{AnalysisBackend, LogFormat, ServerConfig, ServerHandle};
use chora_telemetry::metrics::registry;
use chora_telemetry::trace;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

thread_local! {
    /// How the most recent analysis request on this worker thread was
    /// served, read (and reset) by the per-request log line.
    static LAST_HIT: Cell<&'static str> = const { Cell::new("-") };
}

/// Byte budget of the parsed-program cache (source bytes retained; the
/// programs themselves are a small multiple of that).
const PARSE_CACHE_BYTES: u64 = 16 << 20;

/// Byte budget of the rendered-response cache.
const RESPONSE_CACHE_BYTES: u64 = 32 << 20;

/// Options of `chora serve`.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address (`--addr`, port 0 = ephemeral).
    pub addr: String,
    /// Worker threads of the request pool (`--jobs`, 0 = one per core).
    /// Each request is analyzed sequentially; concurrency comes from
    /// serving requests in parallel (a `?jobs=N` query parameter can still
    /// parallelize a single analysis).
    pub jobs: usize,
    /// Disk tier of the summary store (`--cache-dir`); without it the
    /// store is memory-only (still warm across requests, gone on exit).
    pub cache_dir: Option<String>,
    /// Byte cap of the store (`--cache-cap-bytes`); `None` = flag absent
    /// (the 64 MiB default applies), `Some(0)` = explicitly unbounded.
    pub cache_cap_bytes: Option<u64>,
    /// Entry expiry (`--cache-max-age`); `None` = entries never expire.
    pub cache_max_age: Option<Duration>,
    /// Remote L3 summary cache (`--remote-cache URL[,URL...]`): peer
    /// `chora serve` daemons probed behind memory and disk, and published
    /// to write-through.
    pub remote_cache: Option<String>,
    /// Suppress per-request logging (`--quiet`).
    pub quiet: bool,
    /// Request log line shape (`--log-format text|json`).
    pub log_format: LogFormat,
    /// Log requests at or past this duration even under `--quiet`
    /// (`--slow-request-ms`).
    pub slow_request_ms: Option<f64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7557".to_string(),
            jobs: 0,
            cache_dir: None,
            cache_cap_bytes: None,
            cache_max_age: None,
            remote_cache: None,
            quiet: false,
            log_format: LogFormat::Text,
            slow_request_ms: None,
        }
    }
}

/// Parses `--cache-cap-bytes`: a byte count with an optional K/M/G suffix
/// (`0` is legal and means unbounded — see [`ServeOptions`]).
pub fn parse_cap_bytes(value: &str) -> Result<u64, String> {
    let (digits, unit) = match value.trim().to_ascii_uppercase() {
        v if v.ends_with('K') => (v[..v.len() - 1].to_string(), 1u64 << 10),
        v if v.ends_with('M') => (v[..v.len() - 1].to_string(), 1 << 20),
        v if v.ends_with('G') => (v[..v.len() - 1].to_string(), 1 << 30),
        v => (v, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("--cache-cap-bytes expects BYTES[K|M|G], got `{value}`"))?;
    n.checked_mul(unit)
        .ok_or_else(|| format!("--cache-cap-bytes `{value}` overflows"))
}

/// Parses `--cache-max-age`: seconds, with an optional s/m/h suffix.
pub fn parse_max_age(value: &str) -> Result<Duration, String> {
    let v = value.trim().to_ascii_lowercase();
    let (digits, unit_secs) = match v {
        v if v.ends_with('h') => (v[..v.len() - 1].to_string(), 3600u64),
        v if v.ends_with('m') => (v[..v.len() - 1].to_string(), 60),
        v if v.ends_with('s') => (v[..v.len() - 1].to_string(), 1),
        v => (v, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("--cache-max-age expects SECONDS[s|m|h], got `{value}`"))?;
    Ok(Duration::from_secs(n.saturating_mul(unit_secs)))
}

/// Upper bound on the publisher map: at ~32 bytes per entry this caps the
/// attribution state at a few MiB; past it, new keys simply go
/// unattributed (the cross-program counter under-counts, never lies).
const PUBLISHER_CAP: usize = 1 << 18;

/// The daemon's summary store: the [`TieredStore`] behind a
/// [`SingleFlight`] layer (so concurrent requests missing the same
/// component analyze it once), plus the `/v1/summaries` serving side —
/// publisher attribution for the cross-program reuse counter and the
/// endpoint's own hit accounting.
pub struct ServiceStore {
    flight: SingleFlight<TieredStore>,
    /// Component key → source-program fingerprint of its *first*
    /// publisher, for classifying later fetches as same- or cross-program.
    publishers: Mutex<HashMap<u128, u128>>,
    cross_program_hits: AtomicU64,
    summary_gets: AtomicU64,
    summary_get_hits: AtomicU64,
    summary_puts: AtomicU64,
}

impl ServiceStore {
    fn new(tiered: TieredStore) -> ServiceStore {
        ServiceStore {
            flight: SingleFlight::new(tiered),
            publishers: Mutex::new(HashMap::new()),
            cross_program_hits: AtomicU64::new(0),
            summary_gets: AtomicU64::new(0),
            summary_get_hits: AtomicU64::new(0),
            summary_puts: AtomicU64::new(0),
        }
    }

    /// The tier stack (tests and `bench --server` read its counters).
    pub fn tiered(&self) -> &TieredStore {
        self.flight.inner()
    }

    /// The single-flight coalescing counters.
    pub fn flight_counters(&self) -> FlightCounters {
        self.flight.counters()
    }

    /// Remote fetches of keys first published by a *different* source
    /// program — the fleet's cross-program dedup signal.
    pub fn cross_program_hits(&self) -> u64 {
        self.cross_program_hits.load(Ordering::Relaxed)
    }

    /// Remembers the first source program to publish `key` (local store or
    /// peer upload); later publishers keep the original attribution.
    fn record_publisher(&self, key: &Fingerprint, src: Fingerprint) {
        let mut publishers = self.publishers.lock().expect("publisher map lock");
        if publishers.len() < PUBLISHER_CAP || publishers.contains_key(&key.0) {
            publishers.entry(key.0).or_insert(src.0);
        }
    }

    /// `GET /v1/summaries/{key}`: the raw entry from the local tiers.
    fn serve_get(&self, key: &Fingerprint, src: Option<Fingerprint>) -> Option<String> {
        self.summary_gets.fetch_add(1, Ordering::Relaxed);
        let text = self.tiered().load_local_text(key)?;
        self.summary_get_hits.fetch_add(1, Ordering::Relaxed);
        // Fetches never claim authorship — only stores and uploads do —
        // so attribution reflects who computed, not who asked first.
        if let Some(src) = src {
            let publisher = self
                .publishers
                .lock()
                .expect("publisher map lock")
                .get(&key.0)
                .copied();
            if publisher.is_some_and(|p| p != src.0) {
                self.cross_program_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        Some(text)
    }

    /// `PUT /v1/summaries/{key}`: validate the envelope, adopt locally.
    fn serve_put(
        &self,
        key: &Fingerprint,
        src: Option<Fingerprint>,
        entry: &str,
    ) -> Result<(), String> {
        self.summary_puts.fetch_add(1, Ordering::Relaxed);
        if entry_key(entry) != Some(*key) {
            return Err("entry body does not match the key (or wrong cache version)".to_string());
        }
        self.tiered().store_local_text(key, entry);
        if let Some(src) = src {
            self.record_publisher(key, src);
        }
        Ok(())
    }
}

impl SummaryStore for ServiceStore {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<Vec<ProcedureSummary>> {
        self.flight.load(key, scopes)
    }

    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary], scopes: &dyn ScopeResolver) {
        if let Some(src) = scopes.source_tag() {
            self.record_publisher(key, src);
        }
        self.flight.store(key, summaries, scopes);
    }

    fn stats(&self) -> Vec<StoreStats> {
        self.flight.stats()
    }
}

/// The resident analysis service: the [`ServiceStore`], the parse and
/// response caches shared by every request, plus the default per-request
/// options.
pub struct AnalysisService {
    store: ServiceStore,
    /// Parsed programs keyed by source fingerprint.  Parse *errors* are
    /// never cached: their rendering embeds the request's display name,
    /// so they are not shareable across requests.
    parsed: ShardedLru<Arc<Program>>,
    /// Finished response documents keyed by endpoint + query + source.
    responses: ShardedLru<Arc<str>>,
    /// Default worker count of one *analysis* (overridable per request via
    /// `?jobs=N`); distinct from the request pool size.
    analysis_jobs: usize,
    maintenance: Option<Duration>,
}

impl AnalysisService {
    /// Opens the tiered store described by the options.
    pub fn new(opts: &ServeOptions) -> Result<AnalysisService, CliError> {
        let disk = match &opts.cache_dir {
            Some(dir) => Some(
                DiskStore::open(dir)
                    .map_err(|e| CliError(format!("cannot open cache directory `{dir}`: {e}")))?,
            ),
            None => None,
        };
        let config = TieredConfig {
            // Flag absent → the default cap; an explicit 0 → unbounded.
            cap_bytes: match opts.cache_cap_bytes {
                None => TieredConfig::default().cap_bytes,
                Some(0) => None,
                Some(bytes) => Some(bytes),
            },
            max_age: opts.cache_max_age,
            ..TieredConfig::default()
        };
        // GC cadence: often enough that expiry is visible at half the age
        // granularity, but never a busy loop; byte pressure alone is
        // handled lazily by LRU in memory and hourly on disk.
        let maintenance = match (opts.cache_max_age, disk.is_some()) {
            (Some(age), _) => {
                Some((age / 2).clamp(Duration::from_millis(250), Duration::from_secs(60)))
            }
            (None, true) => Some(Duration::from_secs(3600)),
            (None, false) => None,
        };
        // Publish the always-live engine counters up front, so a freshly
        // started daemon's /v1/metrics already lists every family.
        chora_logic::stats::register_metrics();
        chora_numeric::stats::register_metrics();
        let remote = opts
            .remote_cache
            .as_ref()
            .and_then(|spec| RemoteStore::from_spec(spec, RemoteConfig::default()));
        if opts.remote_cache.is_some() && remote.is_none() {
            return Err(CliError(
                "--remote-cache expects ADDR[,ADDR...] with at least one address".to_string(),
            ));
        }
        let tiered = match remote {
            Some(remote) => TieredStore::with_remote(disk, remote, config),
            None => TieredStore::new(disk, config),
        };
        Ok(AnalysisService {
            store: ServiceStore::new(tiered),
            parsed: ShardedLru::new(PARSE_CACHE_BYTES),
            responses: ShardedLru::new(RESPONSE_CACHE_BYTES),
            analysis_jobs: 1,
            maintenance,
        })
    }

    /// The shared tier stack (tests and `bench --server` read its
    /// counters).
    pub fn store(&self) -> &TieredStore {
        self.store.tiered()
    }

    /// The full service store, including the single-flight layer and the
    /// `/v1/summaries` serving counters.
    pub fn service_store(&self) -> &ServiceStore {
        &self.store
    }

    /// The parsed-program cache (tests and `bench --server` read its
    /// hit/miss counters).
    pub fn parse_cache(&self) -> &ShardedLru<Arc<Program>> {
        &self.parsed
    }

    /// The rendered-response cache.
    pub fn response_cache(&self) -> &ShardedLru<Arc<str>> {
        &self.responses
    }

    /// Parses through the parsed-program cache: the source fingerprint and
    /// a shared handle to the program.
    fn parse_cached(
        &self,
        name: &str,
        source: &str,
    ) -> Result<(Fingerprint, Arc<Program>), String> {
        let key = source_key(source);
        if let Some(program) = self.parsed.get(key) {
            LAST_HIT.with(|hit| hit.set("parse-hit"));
            return Ok((key, program));
        }
        LAST_HIT.with(|hit| hit.set("miss"));
        let program = Arc::new(parse_source(name, source).map_err(|e| e.to_string())?);
        self.parsed
            .put(key, Arc::clone(&program), source.len() as u64);
        Ok((key, program))
    }

    /// Runs one body endpoint through both request caches: parse via the
    /// program cache, probe the response cache, analyze + render + fill on
    /// a miss.  `run` receives the parsed program and must return the
    /// rendered document.
    fn cached_response(
        &self,
        endpoint: Endpoint,
        query: &[(String, String)],
        name: &str,
        source: &str,
        run: impl FnOnce(&Program) -> Result<String, String>,
    ) -> Result<String, String> {
        let (src, program) = self.parse_cached(name, source)?;
        let key = response_key(endpoint.path(), query, src);
        if let Some(doc) = self.responses.get(key) {
            LAST_HIT.with(|hit| hit.set("response-hit"));
            return Ok(doc.to_string());
        }
        let out = run(&program)?;
        self.responses
            .put(key, Arc::from(out.as_str()), out.len() as u64);
        Ok(out)
    }

    /// The `?trace=1` path: analyze under an exclusive trace session —
    /// bypassing the response cache, which would hand back a document with
    /// no (or a stale) trace — and splice the Chrome trace-event JSON into
    /// the rendered document as a `"trace"` field.  Concurrent traced
    /// requests serialize on a gate, since only one session records at a
    /// time process-wide.
    fn traced_response(
        &self,
        name: &str,
        source: &str,
        run: impl FnOnce(&Program) -> Result<String, String>,
    ) -> Result<String, String> {
        static TRACE_GATE: Mutex<()> = Mutex::new(());
        let _gate = TRACE_GATE.lock().expect("trace gate");
        let session = trace::start()
            .ok_or_else(|| "another trace session is already recording".to_string())?;
        let result = self
            .parse_cached(name, source)
            .and_then(|(_, program)| run(&program));
        let captured = session.finish();
        let out = result?;
        Ok(splice_trace(&out, &captured.to_chrome_json()))
    }

    /// The name/value pairs `/v1/stats` renders under `"cache"`.
    fn counter_pairs(c: &TierCounters) -> Vec<(&'static str, u64)> {
        vec![
            ("mem_hits", c.mem_hits),
            ("disk_hits", c.disk_hits),
            ("misses", c.misses),
            ("stores", c.stores),
            ("disk_probes", c.disk_probes),
            ("lru_evictions", c.lru_evictions),
            ("age_evictions", c.age_evictions),
            ("corrupt_evictions", c.corrupt_evictions),
            ("disk_gc_removed", c.disk_gc_removed),
            ("evicted_bytes", c.evicted_bytes),
            ("mem_entries", c.mem_entries),
            ("mem_bytes", c.mem_bytes),
        ]
    }
}

/// Splices a Chrome trace document into a rendered `--json` report as a
/// top-level `"trace"` field (the report is a JSON object ending in `}`).
fn splice_trace(doc: &str, trace_json: &str) -> String {
    match doc.trim_end().strip_suffix('}') {
        Some(head) => format!(
            "{},\n  \"trace\": {trace_json}\n}}\n",
            head.trim_end().trim_end_matches(',')
        ),
        None => doc.to_string(),
    }
}

/// Builds the per-request [`FileOptions`] from the query string.  Unknown
/// parameters are a 400, like unknown flags are a CLI error.  The third
/// element is the `trace=1` switch: record a span trace of this request
/// and splice it into the response.
fn file_options_from_query(
    query: &[(String, String)],
    default_jobs: usize,
    complexity: bool,
) -> Result<(String, FileOptions, bool), String> {
    let mut name = "<request>".to_string();
    let mut traced = false;
    let mut opts = FileOptions {
        json: true,
        jobs: default_jobs,
        quiet: true,
        ..FileOptions::default()
    };
    for (key, value) in query {
        match key.as_str() {
            "file" => name = value.clone(),
            "jobs" => {
                opts.jobs = value
                    .parse()
                    .map_err(|_| format!("`jobs` expects a non-negative integer, got `{value}`"))?
            }
            "proc" => opts.procedure = Some(value.clone()),
            "cost" if complexity => opts.cost_var = Some(value.clone()),
            "size" if complexity => opts.size_param = Some(value.clone()),
            "trace" => {
                traced = match value.as_str() {
                    "1" | "true" => true,
                    "0" | "false" => false,
                    other => return Err(format!("`trace` expects 1 or 0, got `{other}`")),
                }
            }
            other => {
                return Err(format!(
                    "unknown query parameter `{other}` (expected file, jobs, proc, trace{})",
                    if complexity { ", cost, size" } else { "" }
                ))
            }
        }
    }
    Ok((name, opts, traced))
}

/// One parsed element of a `/v1/batch` request body.
struct BatchItem {
    name: String,
    source: String,
    opts: FileOptions,
}

/// Parses one element of the batch array: either a bare string (the
/// source) or an object with `source` (required), `file`, and `proc`.
fn batch_item(element: &Json, default_jobs: usize, index: usize) -> Result<BatchItem, String> {
    let mut opts = FileOptions {
        json: true,
        jobs: default_jobs,
        quiet: true,
        ..FileOptions::default()
    };
    match element {
        Json::Str(source) => Ok(BatchItem {
            name: format!("<batch[{index}]>"),
            source: source.clone(),
            opts,
        }),
        Json::Object(fields) => {
            let mut name = format!("<batch[{index}]>");
            let mut source = None;
            for (key, value) in fields {
                let text = value
                    .as_str()
                    .ok_or_else(|| format!("batch[{index}].{key} must be a string"))?;
                match key.as_str() {
                    "file" => name = text.to_string(),
                    "source" => source = Some(text.to_string()),
                    "proc" => opts.procedure = Some(text.to_string()),
                    other => {
                        return Err(format!(
                        "batch[{index}] has unknown field `{other}` (expected file, source, proc)"
                    ))
                    }
                }
            }
            let source =
                source.ok_or_else(|| format!("batch[{index}] is missing the `source` field"))?;
            Ok(BatchItem { name, source, opts })
        }
        _ => Err(format!(
            "batch[{index}] must be a source string or an object with a `source` field"
        )),
    }
}

/// The per-element error envelope, matching the server's top-level one.
fn error_envelope(message: &str) -> String {
    format!("{{\"error\": {}}}\n", json_string(message))
}

/// Frames rendered per-element documents as one index-aligned JSON array.
/// Elements are already multi-line documents; each is kept at top-level
/// indentation so any element is byte-identical (modulo the separating
/// comma) to the matching single-shot response.
fn frame_batch(rendered: Vec<String>) -> String {
    if rendered.is_empty() {
        return "[]\n".to_string();
    }
    let mut out = String::from("[\n");
    for (i, doc) in rendered.iter().enumerate() {
        out.push_str(doc.trim_end_matches('\n'));
        if i + 1 < rendered.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

impl AnalysisBackend for AnalysisService {
    fn analyze(&self, query: &[(String, String)], source: &str) -> Result<String, String> {
        let (name, opts, traced) = file_options_from_query(query, self.analysis_jobs, false)?;
        let run = |program: &Program| {
            analyze_program(
                &name,
                program,
                &opts,
                Some(&self.store as &dyn SummaryStore),
            )
            .map(|(out, _exit, _stats)| out)
            .map_err(|e| e.to_string())
        };
        if traced {
            return self.traced_response(&name, source, run);
        }
        self.cached_response(Endpoint::Analyze, query, &name, source, run)
    }

    fn complexity(&self, query: &[(String, String)], source: &str) -> Result<String, String> {
        let (name, opts, traced) = file_options_from_query(query, self.analysis_jobs, true)?;
        let run = |program: &Program| {
            complexity_program(
                &name,
                program,
                &opts,
                Some(&self.store as &dyn SummaryStore),
            )
            .map(|(out, _exit, _stats)| out)
            .map_err(|e| e.to_string())
        };
        if traced {
            return self.traced_response(&name, source, run);
        }
        self.cached_response(Endpoint::Complexity, query, &name, source, run)
    }

    /// `POST /v1/batch`: a JSON array of programs, analyzed in one call to
    /// the level-parallel batch driver (all programs' component levels are
    /// merged into one scheduling problem), responses index-aligned with
    /// the request.  Element failures (parse errors, unknown procedures)
    /// become inline `{"error": ...}` envelopes; the batch itself still
    /// succeeds.  Elements share the parse and response caches with
    /// `/v1/analyze` — a batch element and a single-shot request for the
    /// same file and source produce (and reuse) the same cached document.
    fn batch(&self, query: &[(String, String)], body: &str) -> Result<String, String> {
        let mut jobs = self.analysis_jobs;
        for (key, value) in query {
            match key.as_str() {
                "jobs" => {
                    jobs = value.parse().map_err(|_| {
                        format!("`jobs` expects a non-negative integer, got `{value}`")
                    })?
                }
                other => {
                    return Err(format!(
                        "unknown query parameter `{other}` (batch takes only `jobs`; \
                         per-program options go inside the body elements)"
                    ))
                }
            }
        }
        let doc = Json::parse(body).map_err(|e| format!("invalid batch body: {e}"))?;
        let elements = doc
            .as_array()
            .ok_or_else(|| "batch body must be a JSON array".to_string())?;

        let mut rendered: Vec<Option<String>> = Vec::with_capacity(elements.len());
        rendered.resize_with(elements.len(), || None);
        // Analysis work is deduplicated on the source fingerprint (two
        // elements posting the same bytes are analyzed once); rendering
        // stays per element, so names and `proc` focusing still apply.
        let mut program_of: std::collections::HashMap<u128, usize> =
            std::collections::HashMap::new();
        let mut programs: Vec<Arc<Program>> = Vec::new();
        // (element index, program index, response key, item)
        let mut pending: Vec<(usize, usize, Fingerprint, BatchItem)> = Vec::new();
        for (i, element) in elements.iter().enumerate() {
            let item = match batch_item(element, jobs, i) {
                Ok(item) => item,
                Err(e) => {
                    rendered[i] = Some(error_envelope(&e));
                    continue;
                }
            };
            let (src, program) = match self.parse_cached(&item.name, &item.source) {
                Ok(parsed) => parsed,
                Err(e) => {
                    rendered[i] = Some(error_envelope(&e));
                    continue;
                }
            };
            // The same key a single-shot `/v1/analyze?file=..&proc=..`
            // would probe and fill.
            let mut element_query = vec![("file".to_string(), item.name.clone())];
            if let Some(proc) = &item.opts.procedure {
                element_query.push(("proc".to_string(), proc.clone()));
            }
            let key = response_key(Endpoint::Analyze.path(), &element_query, src);
            if let Some(doc) = self.responses.get(key) {
                rendered[i] = Some(doc.to_string());
                continue;
            }
            let p = *program_of.entry(src.0).or_insert_with(|| {
                programs.push(program);
                programs.len() - 1
            });
            pending.push((i, p, key, item));
        }

        if !programs.is_empty() {
            let refs: Vec<&Program> = programs.iter().map(Arc::as_ref).collect();
            let started = Instant::now();
            let results = analyzer_with_jobs(jobs)
                .analyze_batch_with_store(&refs, Some(&self.store as &dyn SummaryStore));
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            for (i, p, key, item) in pending {
                match render_analysis(
                    &item.name,
                    &programs[p],
                    &results[p],
                    &item.opts,
                    elapsed_ms,
                ) {
                    Ok((out, _exit)) => {
                        self.responses
                            .put(key, Arc::from(out.as_str()), out.len() as u64);
                        rendered[i] = Some(out);
                    }
                    Err(e) => rendered[i] = Some(error_envelope(&e.to_string())),
                }
            }
        }

        Ok(frame_batch(
            rendered
                .into_iter()
                .map(|doc| doc.expect("every element rendered or errored"))
                .collect(),
        ))
    }

    fn summary_get(&self, keyhex: &str, src: Option<&str>) -> Result<Option<String>, String> {
        let key = Fingerprint::from_hex(keyhex)
            .ok_or_else(|| format!("malformed summary key `{keyhex}`"))?;
        let src = match src {
            Some(hex) => Some(
                Fingerprint::from_hex(hex)
                    .ok_or_else(|| format!("malformed src fingerprint `{hex}`"))?,
            ),
            None => None,
        };
        Ok(self.store.serve_get(&key, src))
    }

    fn summary_put(&self, keyhex: &str, src: Option<&str>, entry: &str) -> Result<(), String> {
        let key = Fingerprint::from_hex(keyhex)
            .ok_or_else(|| format!("malformed summary key `{keyhex}`"))?;
        let src = match src {
            Some(hex) => Some(
                Fingerprint::from_hex(hex)
                    .ok_or_else(|| format!("malformed src fingerprint `{hex}`"))?,
            ),
            None => None,
        };
        self.store.serve_put(&key, src, entry)
    }

    fn cache_counters(&self) -> Vec<(&'static str, u64)> {
        let mut pairs = AnalysisService::counter_pairs(&self.store.tiered().counters());
        if let Some(remote) = self.store.tiered().remote() {
            pairs.extend([
                ("remote_hits", remote.hits()),
                ("remote_misses", remote.misses()),
                ("remote_stores", remote.stores()),
                ("remote_corrupt", remote.corrupt()),
                ("remote_errors", remote.errors()),
                ("remote_skipped", remote.skipped()),
            ]);
        }
        let flight = self.store.flight_counters();
        pairs.extend([
            (
                "summary_gets",
                self.store.summary_gets.load(Ordering::Relaxed),
            ),
            (
                "summary_get_hits",
                self.store.summary_get_hits.load(Ordering::Relaxed),
            ),
            (
                "summary_puts",
                self.store.summary_puts.load(Ordering::Relaxed),
            ),
            ("remote_cross_program_hits", self.store.cross_program_hits()),
            ("singleflight_leads", flight.leads),
            ("singleflight_waits", flight.waits),
            ("singleflight_wait_hits", flight.wait_hits),
            ("singleflight_wait_timeouts", flight.wait_timeouts),
            ("singleflight_refused", flight.refused),
            ("parse_hits", self.parsed.hits()),
            ("parse_misses", self.parsed.misses()),
            ("parse_entries", self.parsed.entries()),
            ("response_hits", self.responses.hits()),
            ("response_misses", self.responses.misses()),
            ("response_entries", self.responses.entries()),
        ]);
        pairs
    }

    fn fm_counters(&self) -> Vec<(&'static str, u64)> {
        // Live process-wide counters from the projection engine (relaxed
        // atomics, always compiled).
        let fm = chora_logic::stats::snapshot();
        vec![
            ("rows_generated", fm.rows_generated),
            ("rows_deduped", fm.rows_deduped),
            ("rows_dominated", fm.rows_dominated),
            ("imbert_skipped", fm.imbert_skipped),
            ("early_unsat_exits", fm.early_unsat_exits),
            ("max_width", fm.max_width),
        ]
    }

    fn maintain(&self) {
        self.store.tiered().gc();
    }

    fn maintenance_interval(&self) -> Option<Duration> {
        self.maintenance
    }

    /// Publishes the service's cache counters into the telemetry registry
    /// so `/v1/metrics` exposes them alongside the always-live FM, numeric,
    /// and scheduler series.  Counters are *copied* at render time (the
    /// store aggregates across tiers on read, so there is no single static
    /// cell to borrow).
    fn sync_metrics(&self) {
        let c = self.store.tiered().counters();
        let reg = registry();
        let counters: [(&'static str, &'static str, u64); 11] = [
            (
                "chora_cache_mem_hits_total",
                "Summary loads served by the memory tier.",
                c.mem_hits,
            ),
            (
                "chora_cache_disk_hits_total",
                "Summary loads served by the disk tier.",
                c.disk_hits,
            ),
            (
                "chora_cache_misses_total",
                "Summary loads answered by neither tier.",
                c.misses,
            ),
            (
                "chora_cache_stores_total",
                "Summary entries written to the store.",
                c.stores,
            ),
            (
                "chora_cache_evictions_total",
                "Store entries evicted for any reason (LRU, age, corruption, GC).",
                c.lru_evictions + c.age_evictions + c.corrupt_evictions + c.disk_gc_removed,
            ),
            (
                "chora_cache_evicted_bytes_total",
                "Bytes removed from the store for any reason.",
                c.evicted_bytes,
            ),
            (
                "chora_parse_cache_hits_total",
                "Parsed-program cache hits.",
                self.parsed.hits(),
            ),
            (
                "chora_parse_cache_misses_total",
                "Parsed-program cache misses.",
                self.parsed.misses(),
            ),
            (
                "chora_response_cache_hits_total",
                "Rendered-response cache hits.",
                self.responses.hits(),
            ),
            (
                "chora_response_cache_misses_total",
                "Rendered-response cache misses.",
                self.responses.misses(),
            ),
            (
                "chora_cache_disk_probes_total",
                "Disk-tier probes after memory-tier misses.",
                c.disk_probes,
            ),
        ];
        for (name, help, value) in counters {
            reg.counter(name, help).store(value);
        }
        // Fleet-cache and coalescing series: registered unconditionally
        // (zero without a remote tier) so the families a dashboard scrapes
        // exist from the first render.
        let remote = self.store.tiered().remote();
        let flight = self.store.flight_counters();
        let fleet: [(&'static str, &'static str, u64); 12] = [
            (
                "chora_remote_cache_hits_total",
                "Summary loads served by the remote fleet cache.",
                remote.map_or(0, RemoteStore::hits),
            ),
            (
                "chora_remote_cache_misses_total",
                "Remote fleet-cache probes the peer could not answer.",
                remote.map_or(0, RemoteStore::misses),
            ),
            (
                "chora_remote_cache_stores_total",
                "Summary entries published to the remote fleet cache.",
                remote.map_or(0, RemoteStore::stores),
            ),
            (
                "chora_remote_cache_corrupt_total",
                "Remote fleet-cache responses rejected by validation.",
                remote.map_or(0, RemoteStore::corrupt),
            ),
            (
                "chora_remote_cache_errors_total",
                "Remote fleet-cache requests that failed at the transport level.",
                remote.map_or(0, RemoteStore::errors),
            ),
            (
                "chora_remote_cache_skipped_total",
                "Remote fleet-cache probes skipped while targets were in cooldown.",
                remote.map_or(0, RemoteStore::skipped),
            ),
            (
                "chora_remote_cache_cross_program_hits_total",
                "Served summary fetches whose key was first published by a different source program.",
                self.store.cross_program_hits(),
            ),
            (
                "chora_summary_endpoint_gets_total",
                "GET /v1/summaries/{key} requests served.",
                self.store.summary_gets.load(Ordering::Relaxed),
            ),
            (
                "chora_summary_endpoint_puts_total",
                "PUT /v1/summaries/{key} requests served.",
                self.store.summary_puts.load(Ordering::Relaxed),
            ),
            (
                "chora_singleflight_leads_total",
                "Store misses that took the computation lease.",
                flight.leads,
            ),
            (
                "chora_singleflight_waits_total",
                "Store misses coalesced onto another request's computation.",
                flight.waits,
            ),
            (
                "chora_singleflight_wait_hits_total",
                "Coalesced waits that adopted the leader's result.",
                flight.wait_hits,
            ),
        ];
        for (name, help, value) in fleet {
            reg.counter(name, help).store(value);
        }
        reg.gauge(
            "chora_cache_mem_entries",
            "Entries currently resident in the memory tier.",
        )
        .set(c.mem_entries);
        reg.gauge(
            "chora_cache_mem_bytes",
            "Serialized bytes currently held by the memory tier.",
        )
        .set(c.mem_bytes);
    }

    fn last_hit_class(&self) -> &'static str {
        LAST_HIT.with(|hit| hit.replace("-"))
    }
}

fn effective_workers(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// `chora serve`: blocks until SIGINT/SIGTERM or `POST /v1/shutdown`,
/// then drains in-flight requests and returns.
pub fn serve(opts: &ServeOptions) -> Result<(String, i32), CliError> {
    let service = Arc::new(AnalysisService::new(opts)?);
    let config = ServerConfig {
        addr: opts.addr.clone(),
        workers: effective_workers(opts.jobs),
        quiet: opts.quiet,
        handle_signals: true,
        log_format: opts.log_format,
        slow_request_ms: opts.slow_request_ms,
        ..ServerConfig::default()
    };
    chora_server::run(config, service)
        .map_err(|e| CliError(format!("cannot serve on `{}`: {e}", opts.addr)))?;
    Ok((String::new(), 0))
}

/// Starts the daemon on a background thread (tests, `bench --server`);
/// the returned service handle exposes the live store counters.
pub fn spawn_server(opts: &ServeOptions) -> Result<(ServerHandle, Arc<AnalysisService>), CliError> {
    let service = Arc::new(AnalysisService::new(opts)?);
    let config = ServerConfig {
        addr: opts.addr.clone(),
        workers: effective_workers(opts.jobs),
        quiet: opts.quiet,
        handle_signals: false,
        log_format: opts.log_format,
        slow_request_ms: opts.slow_request_ms,
        ..ServerConfig::default()
    };
    let handle = chora_server::spawn(config, Arc::clone(&service) as Arc<dyn AnalysisBackend>)
        .map_err(|e| CliError(format!("cannot serve on `{}`: {e}", opts.addr)))?;
    Ok((handle, service))
}

/// Options of `chora request`.
#[derive(Clone, Debug)]
pub struct RequestOptions {
    /// Endpoint name: `analyze`, `batch`, `complexity`, `healthz`,
    /// `stats`, or `shutdown`.
    pub endpoint: String,
    /// The `.imp` program(s) to send (`-` = stdin): exactly one for
    /// `analyze`/`complexity`, any number for `batch`, none otherwise.
    pub files: Vec<String>,
    /// The daemon to talk to (`--addr`).
    pub addr: String,
    /// Forwarded query parameters (match the CLI flags of the same name).
    pub jobs: Option<usize>,
    pub procedure: Option<String>,
    pub cost_var: Option<String>,
    pub size_param: Option<String>,
}

impl Default for RequestOptions {
    fn default() -> Self {
        RequestOptions {
            endpoint: String::new(),
            files: Vec::new(),
            addr: "127.0.0.1:7557".to_string(),
            jobs: None,
            procedure: None,
            cost_var: None,
            size_param: None,
        }
    }
}

/// `chora request`: one HTTP round-trip against a running `chora serve`,
/// response body on stdout.  For `analyze` and `batch`, the exit code
/// mirrors the CLI (1 when an assertion was not proved).
pub fn request(opts: &RequestOptions) -> Result<(String, i32), CliError> {
    let endpoint = Endpoint::from_name(&opts.endpoint).ok_or_else(|| {
        CliError(format!(
            "unknown endpoint `{}`; available: analyze, batch, complexity, healthz, stats, shutdown",
            opts.endpoint
        ))
    })?;
    let single_file = matches!(endpoint, Endpoint::Analyze | Endpoint::Complexity);
    let body = match endpoint {
        Endpoint::Analyze | Endpoint::Complexity => match opts.files.as_slice() {
            [path] => Some(read_source(path)?),
            _ => {
                return Err(CliError(format!(
                    "`chora request {}` expects exactly one FILE argument (`-` reads stdin)",
                    opts.endpoint
                )))
            }
        },
        Endpoint::Batch => {
            if opts.files.is_empty() {
                return Err(CliError(
                    "`chora request batch` expects one or more FILE arguments".to_string(),
                ));
            }
            let mut elements = Vec::new();
            for path in &opts.files {
                let mut element = Json::object()
                    .field("file", Json::str(path.as_str()))
                    .field("source", Json::str(read_source(path)?));
                if let Some(proc) = &opts.procedure {
                    element = element.field("proc", Json::str(proc.as_str()));
                }
                elements.push(element);
            }
            Some(Json::Array(elements).pretty())
        }
        _ => {
            if !opts.files.is_empty() {
                return Err(CliError(format!(
                    "`chora request {}` takes no FILE argument",
                    opts.endpoint
                )));
            }
            None
        }
    };

    let mut query: Vec<(&str, String)> = Vec::new();
    if single_file {
        query.push(("file", opts.files[0].clone()));
        if let Some(proc) = &opts.procedure {
            query.push(("proc", proc.clone()));
        }
        if let Some(cost) = &opts.cost_var {
            query.push(("cost", cost.clone()));
        }
        if let Some(size) = &opts.size_param {
            query.push(("size", size.clone()));
        }
    }
    if matches!(
        endpoint,
        Endpoint::Analyze | Endpoint::Complexity | Endpoint::Batch
    ) {
        if let Some(jobs) = opts.jobs {
            query.push(("jobs", jobs.to_string()));
        }
    }
    let path = if query.is_empty() {
        endpoint.path().to_string()
    } else {
        let encoded: Vec<String> = query
            .iter()
            .map(|(k, v)| format!("{k}={}", encode_query_component(v)))
            .collect();
        format!("{}?{}", endpoint.path(), encoded.join("&"))
    };

    let mut client = Client::new(&opts.addr);
    let (status, response) = client
        .send(endpoint.method(), &path, body.as_deref())
        .map_err(|e| {
            CliError(format!(
                "cannot reach chora serve at `{}`: {e} (is the daemon running?)",
                opts.addr
            ))
        })?;
    if status != 200 {
        return Err(CliError(format!(
            "server returned {status}: {}",
            response.trim()
        )));
    }
    let exit = if matches!(endpoint, Endpoint::Analyze | Endpoint::Batch)
        && response.contains("\"all_assertions_verified\": false")
    {
        1
    } else {
        0
    };
    Ok((response, exit))
}

/// `chora bench --server DIR`: replays every `.imp` program under `DIR`
/// through a live in-process daemon over one keep-alive HTTP connection —
/// one cold pass, then warm rounds — and reports per-program latency plus
/// cold/warm requests-per-second and the cache counters.
pub fn bench_server(opts: &BenchOptions) -> Result<(String, i32), CliError> {
    let dir = opts.programs_dir.as_ref().ok_or_else(|| {
        CliError("`chora bench --server` needs a DIR of .imp programs".to_string())
    })?;
    let keep = |name: &str| match &opts.filter {
        Some(f) => name.contains(f.as_str()),
        None => true,
    };
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CliError(format!("cannot read directory `{dir}`: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "imp"))
        .collect();
    paths.sort();
    let mut programs: Vec<(String, String, String)> = Vec::new(); // (name, file, source)
    for path in paths {
        let display = path.display().to_string();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| display.clone());
        if !keep(&name) {
            continue;
        }
        programs.push((name, display.clone(), read_source(&display)?));
    }
    if programs.is_empty() {
        return Err(CliError(format!("no .imp programs under `{dir}` match")));
    }

    let serve_opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: opts.jobs,
        cache_dir: opts.cache_dir.clone().filter(|_| !opts.no_cache),
        remote_cache: opts.remote_cache.clone().filter(|_| !opts.no_cache),
        quiet: true,
        ..ServeOptions::default()
    };
    let workers = effective_workers(serve_opts.jobs);
    let (handle, service) = spawn_server(&serve_opts)?;
    // One connection for the whole bench: every request after the first
    // rides the established keep-alive connection.
    let mut client = Client::new(handle.addr().to_string());

    let mut send = |file: &str, source: &str| -> Result<f64, CliError> {
        let path = format!("/v1/analyze?file={}", encode_query_component(file));
        let started = Instant::now();
        let (status, body) = client
            .post(&path, source)
            .map_err(|e| CliError(format!("request to the bench server failed: {e}")))?;
        if status != 200 {
            return Err(CliError(format!(
                "bench server returned {status} for `{file}`: {}",
                body.trim()
            )));
        }
        Ok(started.elapsed().as_secs_f64() * 1e3)
    };

    // Cold pass: every program once, sequentially, into empty caches.
    let cold_started = Instant::now();
    let mut cold_ms: Vec<f64> = Vec::new();
    for (_, file, source) in &programs {
        cold_ms.push(send(file, source)?);
    }
    let cold_total_s = cold_started.elapsed().as_secs_f64();

    // Warm rounds: enough repeats for a stable requests/sec figure.
    let rounds = (96 / programs.len()).max(3);
    let probes_before_warm = service.store().counters().disk_probes;
    let parse_hits_before_warm = service.parse_cache().hits();
    let response_hits_before_warm = service.response_cache().hits();
    let warm_started = Instant::now();
    let mut warm_total_ms = vec![0.0f64; programs.len()];
    for _ in 0..rounds {
        for (i, (_, file, source)) in programs.iter().enumerate() {
            warm_total_ms[i] += send(file, source)?;
        }
    }
    let warm_total_s = warm_started.elapsed().as_secs_f64();
    let warm_requests = rounds * programs.len();
    let counters = service.store().counters();
    let warm_disk_probes = counters.disk_probes - probes_before_warm;
    let warm_parse_hits = service.parse_cache().hits() - parse_hits_before_warm;
    let warm_response_hits = service.response_cache().hits() - response_hits_before_warm;
    client.close();
    handle.shutdown();

    let cold_rps = programs.len() as f64 / cold_total_s.max(1e-9);
    let warm_rps = warm_requests as f64 / warm_total_s.max(1e-9);

    if opts.json {
        let rows: Vec<Json> = programs
            .iter()
            .enumerate()
            .map(|(i, (name, _, _))| {
                Json::object()
                    .field("name", Json::str(name.as_str()))
                    .field("cold_ms", Json::Float(cold_ms[i]))
                    .field(
                        "warm_mean_ms",
                        Json::Float(warm_total_ms[i] / rounds as f64),
                    )
            })
            .collect();
        let doc = Json::object().field(
            "server_bench",
            Json::object()
                .field("workers", Json::Int(workers as i64))
                .field("programs", Json::Array(rows))
                .field("cold_rps", Json::Float(cold_rps))
                .field("warm_rps", Json::Float(warm_rps))
                .field("warm_requests", Json::Int(warm_requests as i64))
                .field("warm_mem_hits", Json::Int(counters.mem_hits as i64))
                .field("warm_disk_probes", Json::Int(warm_disk_probes as i64))
                .field("warm_parse_hits", Json::Int(warm_parse_hits as i64))
                .field("warm_response_hits", Json::Int(warm_response_hits as i64)),
        );
        return Ok((doc.pretty(), 0));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "server bench: {} programs over one keep-alive connection ({workers} workers)\n\n",
        programs.len()
    ));
    out.push_str(&format!(
        "{:<18} {:>10} {:>12}\n",
        "program", "cold", "warm (mean)"
    ));
    for (i, (name, _, _)) in programs.iter().enumerate() {
        out.push_str(&format!(
            "{name:<18} {:>8.1}ms {:>10.1}ms\n",
            cold_ms[i],
            warm_total_ms[i] / rounds as f64
        ));
    }
    out.push_str(&format!(
        "\ncold: {cold_rps:.1} req/s    warm: {warm_rps:.1} req/s ({warm_requests} requests, \
         {} mem hits, {warm_disk_probes} disk probes, {warm_parse_hits} parse hits, \
         {warm_response_hits} response hits during warm rounds)\n",
        counters.mem_hits
    ));
    Ok((out, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_bytes_parses_suffixes_and_zero() {
        assert_eq!(parse_cap_bytes("1024"), Ok(1024));
        assert_eq!(parse_cap_bytes("4K"), Ok(4096));
        assert_eq!(parse_cap_bytes("2M"), Ok(2 << 20));
        assert_eq!(parse_cap_bytes("1G"), Ok(1 << 30));
        assert_eq!(parse_cap_bytes("0"), Ok(0), "0 is legal (unbounded)");
        assert!(parse_cap_bytes("lots").is_err());
    }

    #[test]
    fn explicit_zero_cap_means_an_unbounded_store() {
        let unbounded = AnalysisService::new(&ServeOptions {
            cache_cap_bytes: Some(0),
            ..ServeOptions::default()
        })
        .expect("service");
        assert_eq!(unbounded.store().config().cap_bytes, None);
        let defaulted = AnalysisService::new(&ServeOptions::default()).expect("service");
        assert_eq!(defaulted.store().config().cap_bytes, Some(64 << 20));
    }

    #[test]
    fn max_age_parses_suffixes() {
        assert_eq!(parse_max_age("90"), Ok(Duration::from_secs(90)));
        assert_eq!(parse_max_age("30s"), Ok(Duration::from_secs(30)));
        assert_eq!(parse_max_age("5m"), Ok(Duration::from_secs(300)));
        assert_eq!(parse_max_age("2h"), Ok(Duration::from_secs(7200)));
        assert!(parse_max_age("never").is_err());
    }

    #[test]
    fn query_options_reject_unknown_and_misplaced_parameters() {
        let q = |pairs: &[(&str, &str)]| {
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect::<Vec<_>>()
        };
        let (name, opts, traced) =
            file_options_from_query(&q(&[("file", "x.imp"), ("jobs", "4")]), 1, false)
                .expect("valid");
        assert_eq!(name, "x.imp");
        assert_eq!(opts.jobs, 4);
        assert!(opts.json);
        assert!(!traced);
        let (_, _, traced) =
            file_options_from_query(&q(&[("trace", "1")]), 1, false).expect("traced");
        assert!(traced);
        assert!(file_options_from_query(&q(&[("trace", "maybe")]), 1, false).is_err());
        assert!(file_options_from_query(&q(&[("bogus", "1")]), 1, false).is_err());
        // cost/size only exist on the complexity endpoint.
        assert!(file_options_from_query(&q(&[("cost", "c")]), 1, false).is_err());
        assert!(file_options_from_query(&q(&[("cost", "c")]), 1, true).is_ok());
        assert!(file_options_from_query(&q(&[("jobs", "many")]), 1, false).is_err());
    }

    const SOURCE: &str = "global cost;\n\
        proc main(n) {\n  cost := cost + 1;\n  assert(cost >= cost, \"trivial\");\n}\n";

    fn service() -> AnalysisService {
        AnalysisService::new(&ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            ..ServeOptions::default()
        })
        .expect("service")
    }

    #[test]
    fn repeated_requests_hit_the_parse_and_response_caches() {
        let service = service();
        let query = vec![("file".to_string(), "t.imp".to_string())];
        let first = service.analyze(&query, SOURCE).expect("analyze");
        assert_eq!(service.parse_cache().hits(), 0);
        assert_eq!(service.parse_cache().misses(), 1);
        assert_eq!(service.response_cache().hits(), 0);
        let second = service.analyze(&query, SOURCE).expect("analyze again");
        assert_eq!(first, second, "cached response must be byte-identical");
        assert_eq!(service.parse_cache().hits(), 1);
        assert_eq!(service.response_cache().hits(), 1);
        // A different display name misses the response cache (the document
        // embeds the name) but still shares the parsed program.
        let renamed = vec![("file".to_string(), "other.imp".to_string())];
        let third = service.analyze(&renamed, SOURCE).expect("renamed");
        assert_ne!(first, third);
        assert_eq!(service.parse_cache().hits(), 2);
        assert_eq!(service.response_cache().hits(), 1);
        // Parse errors are never cached: the same bad source misses twice.
        assert!(service.analyze(&query, "nonsense {").is_err());
        assert!(service.analyze(&query, "nonsense {").is_err());
        assert_eq!(service.parse_cache().misses(), 3);
    }

    #[test]
    fn batch_elements_match_single_shot_responses() {
        let single = service();
        let solo = single
            .analyze(&[("file".to_string(), "a.imp".to_string())], SOURCE)
            .expect("single-shot");

        let batched = service();
        let body = Json::Array(vec![
            Json::object()
                .field("file", Json::str("a.imp"))
                .field("source", Json::str(SOURCE)),
            Json::str(SOURCE),
            Json::str("broken {"),
        ])
        .pretty();
        let out = batched.batch(&[], &body).expect("batch");
        assert!(out.starts_with("[\n"), "{out}");
        assert!(out.ends_with("]\n"), "{out}");
        // Element 0 is byte-identical to the single-shot document (modulo
        // the timing line and the separating comma).
        let strip = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.contains("analysis_ms"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let element0 = out
            .trim_start_matches("[\n")
            .split("\n},")
            .next()
            .map(|s| format!("{s}\n}}"))
            .expect("element 0");
        assert_eq!(
            strip(&element0),
            strip(solo.trim_end_matches('\n')),
            "{out}"
        );
        // Element 2 is an inline error envelope; the batch still succeeds.
        assert!(out.contains("\"error\""), "{out}");
        // Empty batches are the empty array.
        assert_eq!(batched.batch(&[], "[]").expect("empty"), "[]\n");
        // Malformed bodies and unknown query parameters are batch-level
        // errors.
        assert!(batched.batch(&[], "{}").is_err());
        assert!(batched
            .batch(&[], "[31]")
            .expect("non-string")
            .contains("\"error\""));
        assert!(batched
            .batch(&[("proc".to_string(), "main".to_string())], "[]")
            .is_err());
    }

    #[test]
    fn batch_and_single_shot_share_the_response_cache() {
        let service = service();
        let query = vec![("file".to_string(), "a.imp".to_string())];
        let solo = service.analyze(&query, SOURCE).expect("single-shot");
        let body = Json::Array(vec![Json::object()
            .field("file", Json::str("a.imp"))
            .field("source", Json::str(SOURCE))])
        .pretty();
        let out = service.batch(&[], &body).expect("batch");
        assert_eq!(
            service.response_cache().hits(),
            1,
            "batch element reused the single-shot doc"
        );
        assert_eq!(out, format!("[\n{}\n]\n", solo.trim_end_matches('\n')));
    }
}
