//! `chora serve` and `chora request`: the analysis-as-a-service wiring.
//!
//! [`AnalysisService`] implements [`chora_server::AnalysisBackend`] on top
//! of the factored driver ([`analyze_source`]/[`complexity_source`]) and a
//! resident [`TieredStore`] — so a request body goes straight from socket
//! to parser to analyzer, no subprocess, and the hot set of component
//! summaries is served from memory without touching the disk tier.
//! Response payloads are the *identical* JSON documents the `analyze
//! --json`/`complexity --json` subcommands print (the CI `server-smoke`
//! job diffs them byte-for-byte, timing fields aside).

use crate::driver::{
    analyze_source, complexity_source, read_source, BenchOptions, CliError, FileOptions,
};
use crate::json::Json;
use chora_core::{DiskStore, SummaryStore, TierCounters, TieredConfig, TieredStore};
use chora_server::client::http_request;
use chora_server::http::encode_query_component;
use chora_server::router::Endpoint;
use chora_server::{AnalysisBackend, ServerConfig, ServerHandle};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options of `chora serve`.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address (`--addr`, port 0 = ephemeral).
    pub addr: String,
    /// Worker threads of the request pool (`--jobs`, 0 = one per core).
    /// Each request is analyzed sequentially; concurrency comes from
    /// serving requests in parallel (a `?jobs=N` query parameter can still
    /// parallelize a single analysis).
    pub jobs: usize,
    /// Disk tier of the summary store (`--cache-dir`); without it the
    /// store is memory-only (still warm across requests, gone on exit).
    pub cache_dir: Option<String>,
    /// Byte cap of the store (`--cache-cap-bytes`); `None` = flag absent
    /// (the 64 MiB default applies), `Some(0)` = explicitly unbounded.
    pub cache_cap_bytes: Option<u64>,
    /// Entry expiry (`--cache-max-age`); `None` = entries never expire.
    pub cache_max_age: Option<Duration>,
    /// Suppress per-request logging (`--quiet`).
    pub quiet: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7557".to_string(),
            jobs: 0,
            cache_dir: None,
            cache_cap_bytes: None,
            cache_max_age: None,
            quiet: false,
        }
    }
}

/// Parses `--cache-cap-bytes`: a byte count with an optional K/M/G suffix
/// (`0` is legal and means unbounded — see [`ServeOptions`]).
pub fn parse_cap_bytes(value: &str) -> Result<u64, String> {
    let (digits, unit) = match value.trim().to_ascii_uppercase() {
        v if v.ends_with('K') => (v[..v.len() - 1].to_string(), 1u64 << 10),
        v if v.ends_with('M') => (v[..v.len() - 1].to_string(), 1 << 20),
        v if v.ends_with('G') => (v[..v.len() - 1].to_string(), 1 << 30),
        v => (v, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("--cache-cap-bytes expects BYTES[K|M|G], got `{value}`"))?;
    n.checked_mul(unit)
        .ok_or_else(|| format!("--cache-cap-bytes `{value}` overflows"))
}

/// Parses `--cache-max-age`: seconds, with an optional s/m/h suffix.
pub fn parse_max_age(value: &str) -> Result<Duration, String> {
    let v = value.trim().to_ascii_lowercase();
    let (digits, unit_secs) = match v {
        v if v.ends_with('h') => (v[..v.len() - 1].to_string(), 3600u64),
        v if v.ends_with('m') => (v[..v.len() - 1].to_string(), 60),
        v if v.ends_with('s') => (v[..v.len() - 1].to_string(), 1),
        v => (v, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("--cache-max-age expects SECONDS[s|m|h], got `{value}`"))?;
    Ok(Duration::from_secs(n.saturating_mul(unit_secs)))
}

/// The resident analysis service: a [`TieredStore`] shared by every
/// request plus the default per-request options.
pub struct AnalysisService {
    store: TieredStore,
    /// Default worker count of one *analysis* (overridable per request via
    /// `?jobs=N`); distinct from the request pool size.
    analysis_jobs: usize,
    maintenance: Option<Duration>,
}

impl AnalysisService {
    /// Opens the tiered store described by the options.
    pub fn new(opts: &ServeOptions) -> Result<AnalysisService, CliError> {
        let disk = match &opts.cache_dir {
            Some(dir) => Some(
                DiskStore::open(dir)
                    .map_err(|e| CliError(format!("cannot open cache directory `{dir}`: {e}")))?,
            ),
            None => None,
        };
        let config = TieredConfig {
            // Flag absent → the default cap; an explicit 0 → unbounded.
            cap_bytes: match opts.cache_cap_bytes {
                None => TieredConfig::default().cap_bytes,
                Some(0) => None,
                Some(bytes) => Some(bytes),
            },
            max_age: opts.cache_max_age,
            ..TieredConfig::default()
        };
        // GC cadence: often enough that expiry is visible at half the age
        // granularity, but never a busy loop; byte pressure alone is
        // handled lazily by LRU in memory and hourly on disk.
        let maintenance = match (opts.cache_max_age, disk.is_some()) {
            (Some(age), _) => {
                Some((age / 2).clamp(Duration::from_millis(250), Duration::from_secs(60)))
            }
            (None, true) => Some(Duration::from_secs(3600)),
            (None, false) => None,
        };
        Ok(AnalysisService {
            store: TieredStore::new(disk, config),
            analysis_jobs: 1,
            maintenance,
        })
    }

    /// The shared store (tests and `bench --server` read its counters).
    pub fn store(&self) -> &TieredStore {
        &self.store
    }

    /// The name/value pairs `/v1/stats` renders under `"cache"`.
    fn counter_pairs(c: &TierCounters) -> Vec<(&'static str, u64)> {
        vec![
            ("mem_hits", c.mem_hits),
            ("disk_hits", c.disk_hits),
            ("misses", c.misses),
            ("stores", c.stores),
            ("disk_probes", c.disk_probes),
            ("lru_evictions", c.lru_evictions),
            ("age_evictions", c.age_evictions),
            ("corrupt_evictions", c.corrupt_evictions),
            ("disk_gc_removed", c.disk_gc_removed),
            ("mem_entries", c.mem_entries),
            ("mem_bytes", c.mem_bytes),
        ]
    }
}

/// Builds the per-request [`FileOptions`] from the query string.  Unknown
/// parameters are a 400, like unknown flags are a CLI error.
fn file_options_from_query(
    query: &[(String, String)],
    default_jobs: usize,
    complexity: bool,
) -> Result<(String, FileOptions), String> {
    let mut name = "<request>".to_string();
    let mut opts = FileOptions {
        json: true,
        jobs: default_jobs,
        quiet: true,
        ..FileOptions::default()
    };
    for (key, value) in query {
        match key.as_str() {
            "file" => name = value.clone(),
            "jobs" => {
                opts.jobs = value
                    .parse()
                    .map_err(|_| format!("`jobs` expects a non-negative integer, got `{value}`"))?
            }
            "proc" => opts.procedure = Some(value.clone()),
            "cost" if complexity => opts.cost_var = Some(value.clone()),
            "size" if complexity => opts.size_param = Some(value.clone()),
            other => {
                return Err(format!(
                    "unknown query parameter `{other}` (expected file, jobs, proc{})",
                    if complexity { ", cost, size" } else { "" }
                ))
            }
        }
    }
    Ok((name, opts))
}

impl AnalysisBackend for AnalysisService {
    fn analyze(&self, query: &[(String, String)], source: &str) -> Result<String, String> {
        let (name, opts) = file_options_from_query(query, self.analysis_jobs, false)?;
        analyze_source(&name, source, &opts, Some(&self.store as &dyn SummaryStore))
            .map(|(out, _exit, _stats)| out)
            .map_err(|e| e.to_string())
    }

    fn complexity(&self, query: &[(String, String)], source: &str) -> Result<String, String> {
        let (name, opts) = file_options_from_query(query, self.analysis_jobs, true)?;
        complexity_source(&name, source, &opts, Some(&self.store as &dyn SummaryStore))
            .map(|(out, _exit, _stats)| out)
            .map_err(|e| e.to_string())
    }

    fn cache_counters(&self) -> Vec<(&'static str, u64)> {
        AnalysisService::counter_pairs(&self.store.counters())
    }

    fn maintain(&self) {
        self.store.gc();
    }

    fn maintenance_interval(&self) -> Option<Duration> {
        self.maintenance
    }
}

fn effective_workers(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// `chora serve`: blocks until SIGINT/SIGTERM or `POST /v1/shutdown`,
/// then drains in-flight requests and returns.
pub fn serve(opts: &ServeOptions) -> Result<(String, i32), CliError> {
    let service = Arc::new(AnalysisService::new(opts)?);
    let config = ServerConfig {
        addr: opts.addr.clone(),
        workers: effective_workers(opts.jobs),
        quiet: opts.quiet,
        handle_signals: true,
    };
    chora_server::run(config, service)
        .map_err(|e| CliError(format!("cannot serve on `{}`: {e}", opts.addr)))?;
    Ok((String::new(), 0))
}

/// Starts the daemon on a background thread (tests, `bench --server`);
/// the returned service handle exposes the live store counters.
pub fn spawn_server(opts: &ServeOptions) -> Result<(ServerHandle, Arc<AnalysisService>), CliError> {
    let service = Arc::new(AnalysisService::new(opts)?);
    let config = ServerConfig {
        addr: opts.addr.clone(),
        workers: effective_workers(opts.jobs),
        quiet: opts.quiet,
        handle_signals: false,
    };
    let handle = chora_server::spawn(config, Arc::clone(&service) as Arc<dyn AnalysisBackend>)
        .map_err(|e| CliError(format!("cannot serve on `{}`: {e}", opts.addr)))?;
    Ok((handle, service))
}

/// Options of `chora request`.
#[derive(Clone, Debug)]
pub struct RequestOptions {
    /// Endpoint name: `analyze`, `complexity`, `healthz`, `stats`, or
    /// `shutdown`.
    pub endpoint: String,
    /// The `.imp` program to send (`-` = stdin); only the analysis
    /// endpoints take one.
    pub file: Option<String>,
    /// The daemon to talk to (`--addr`).
    pub addr: String,
    /// Forwarded query parameters (match the CLI flags of the same name).
    pub jobs: Option<usize>,
    pub procedure: Option<String>,
    pub cost_var: Option<String>,
    pub size_param: Option<String>,
}

impl Default for RequestOptions {
    fn default() -> Self {
        RequestOptions {
            endpoint: String::new(),
            file: None,
            addr: "127.0.0.1:7557".to_string(),
            jobs: None,
            procedure: None,
            cost_var: None,
            size_param: None,
        }
    }
}

/// `chora request`: one HTTP round-trip against a running `chora serve`,
/// response body on stdout.  For `analyze`, the exit code mirrors the CLI
/// (1 when an assertion was not proved).
pub fn request(opts: &RequestOptions) -> Result<(String, i32), CliError> {
    let endpoint = Endpoint::from_name(&opts.endpoint).ok_or_else(|| {
        CliError(format!(
            "unknown endpoint `{}`; available: analyze, complexity, healthz, stats, shutdown",
            opts.endpoint
        ))
    })?;
    let needs_body = matches!(endpoint, Endpoint::Analyze | Endpoint::Complexity);
    let body = match (&opts.file, needs_body) {
        (Some(path), true) => Some(read_source(path)?),
        (None, true) => {
            return Err(CliError(format!(
                "`chora request {}` expects a FILE argument (`-` reads stdin)",
                opts.endpoint
            )))
        }
        (Some(_), false) => {
            return Err(CliError(format!(
                "`chora request {}` takes no FILE argument",
                opts.endpoint
            )))
        }
        (None, false) => None,
    };

    let mut query: Vec<(&str, String)> = Vec::new();
    if needs_body {
        query.push(("file", opts.file.clone().expect("checked above")));
        if let Some(jobs) = opts.jobs {
            query.push(("jobs", jobs.to_string()));
        }
        if let Some(proc) = &opts.procedure {
            query.push(("proc", proc.clone()));
        }
        if let Some(cost) = &opts.cost_var {
            query.push(("cost", cost.clone()));
        }
        if let Some(size) = &opts.size_param {
            query.push(("size", size.clone()));
        }
    }
    let path = if query.is_empty() {
        endpoint.path().to_string()
    } else {
        let encoded: Vec<String> = query
            .iter()
            .map(|(k, v)| format!("{k}={}", encode_query_component(v)))
            .collect();
        format!("{}?{}", endpoint.path(), encoded.join("&"))
    };

    let (status, response) = http_request(&opts.addr, endpoint.method(), &path, body.as_deref())
        .map_err(|e| {
            CliError(format!(
                "cannot reach chora serve at `{}`: {e} (is the daemon running?)",
                opts.addr
            ))
        })?;
    if status != 200 {
        return Err(CliError(format!(
            "server returned {status}: {}",
            response.trim()
        )));
    }
    let exit = if endpoint == Endpoint::Analyze
        && response.contains("\"all_assertions_verified\": false")
    {
        1
    } else {
        0
    };
    Ok((response, exit))
}

/// `chora bench --server DIR`: replays every `.imp` program under `DIR`
/// through a live in-process daemon over real HTTP — one cold pass, then
/// warm rounds — and reports per-program latency plus cold/warm
/// requests-per-second and the store counters.
pub fn bench_server(opts: &BenchOptions) -> Result<(String, i32), CliError> {
    let dir = opts.programs_dir.as_ref().ok_or_else(|| {
        CliError("`chora bench --server` needs a DIR of .imp programs".to_string())
    })?;
    let keep = |name: &str| match &opts.filter {
        Some(f) => name.contains(f.as_str()),
        None => true,
    };
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CliError(format!("cannot read directory `{dir}`: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "imp"))
        .collect();
    paths.sort();
    let mut programs: Vec<(String, String, String)> = Vec::new(); // (name, file, source)
    for path in paths {
        let display = path.display().to_string();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| display.clone());
        if !keep(&name) {
            continue;
        }
        programs.push((name, display.clone(), read_source(&display)?));
    }
    if programs.is_empty() {
        return Err(CliError(format!("no .imp programs under `{dir}` match")));
    }

    let serve_opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: opts.jobs,
        cache_dir: opts.cache_dir.clone().filter(|_| !opts.no_cache),
        quiet: true,
        ..ServeOptions::default()
    };
    let workers = effective_workers(serve_opts.jobs);
    let (handle, service) = spawn_server(&serve_opts)?;
    let addr = handle.addr().to_string();

    let send = |file: &str, source: &str| -> Result<f64, CliError> {
        let path = format!("/v1/analyze?file={}", encode_query_component(file));
        let started = Instant::now();
        let (status, body) = http_request(&addr, "POST", &path, Some(source))
            .map_err(|e| CliError(format!("request to the bench server failed: {e}")))?;
        if status != 200 {
            return Err(CliError(format!(
                "bench server returned {status} for `{file}`: {}",
                body.trim()
            )));
        }
        Ok(started.elapsed().as_secs_f64() * 1e3)
    };

    // Cold pass: every program once, sequentially, into an empty store.
    let cold_started = Instant::now();
    let mut cold_ms: Vec<f64> = Vec::new();
    for (_, file, source) in &programs {
        cold_ms.push(send(file, source)?);
    }
    let cold_total_s = cold_started.elapsed().as_secs_f64();

    // Warm rounds: enough repeats for a stable requests/sec figure.
    let rounds = (24 / programs.len()).max(3);
    let probes_before_warm = service.store().counters().disk_probes;
    let warm_started = Instant::now();
    let mut warm_total_ms = vec![0.0f64; programs.len()];
    for _ in 0..rounds {
        for (i, (_, file, source)) in programs.iter().enumerate() {
            warm_total_ms[i] += send(file, source)?;
        }
    }
    let warm_total_s = warm_started.elapsed().as_secs_f64();
    let warm_requests = rounds * programs.len();
    let counters = service.store().counters();
    let warm_disk_probes = counters.disk_probes - probes_before_warm;
    handle.shutdown();

    let cold_rps = programs.len() as f64 / cold_total_s.max(1e-9);
    let warm_rps = warm_requests as f64 / warm_total_s.max(1e-9);

    if opts.json {
        let rows: Vec<Json> = programs
            .iter()
            .enumerate()
            .map(|(i, (name, _, _))| {
                Json::object()
                    .field("name", Json::str(name.as_str()))
                    .field("cold_ms", Json::Float(cold_ms[i]))
                    .field(
                        "warm_mean_ms",
                        Json::Float(warm_total_ms[i] / rounds as f64),
                    )
            })
            .collect();
        let doc = Json::object().field(
            "server_bench",
            Json::object()
                .field("workers", Json::Int(workers as i64))
                .field("programs", Json::Array(rows))
                .field("cold_rps", Json::Float(cold_rps))
                .field("warm_rps", Json::Float(warm_rps))
                .field("warm_requests", Json::Int(warm_requests as i64))
                .field("warm_mem_hits", Json::Int(counters.mem_hits as i64))
                .field("warm_disk_probes", Json::Int(warm_disk_probes as i64)),
        );
        return Ok((doc.pretty(), 0));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "server bench: {} programs through http://{addr} ({workers} workers)\n\n",
        programs.len()
    ));
    out.push_str(&format!(
        "{:<18} {:>10} {:>12}\n",
        "program", "cold", "warm (mean)"
    ));
    for (i, (name, _, _)) in programs.iter().enumerate() {
        out.push_str(&format!(
            "{name:<18} {:>8.1}ms {:>10.1}ms\n",
            cold_ms[i],
            warm_total_ms[i] / rounds as f64
        ));
    }
    out.push_str(&format!(
        "\ncold: {cold_rps:.1} req/s    warm: {warm_rps:.1} req/s ({warm_requests} requests, \
         {} mem hits, {warm_disk_probes} disk probes during warm rounds)\n",
        counters.mem_hits
    ));
    Ok((out, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_bytes_parses_suffixes_and_zero() {
        assert_eq!(parse_cap_bytes("1024"), Ok(1024));
        assert_eq!(parse_cap_bytes("4K"), Ok(4096));
        assert_eq!(parse_cap_bytes("2M"), Ok(2 << 20));
        assert_eq!(parse_cap_bytes("1G"), Ok(1 << 30));
        assert_eq!(parse_cap_bytes("0"), Ok(0), "0 is legal (unbounded)");
        assert!(parse_cap_bytes("lots").is_err());
    }

    #[test]
    fn explicit_zero_cap_means_an_unbounded_store() {
        let unbounded = AnalysisService::new(&ServeOptions {
            cache_cap_bytes: Some(0),
            ..ServeOptions::default()
        })
        .expect("service");
        assert_eq!(unbounded.store().config().cap_bytes, None);
        let defaulted = AnalysisService::new(&ServeOptions::default()).expect("service");
        assert_eq!(defaulted.store().config().cap_bytes, Some(64 << 20));
    }

    #[test]
    fn max_age_parses_suffixes() {
        assert_eq!(parse_max_age("90"), Ok(Duration::from_secs(90)));
        assert_eq!(parse_max_age("30s"), Ok(Duration::from_secs(30)));
        assert_eq!(parse_max_age("5m"), Ok(Duration::from_secs(300)));
        assert_eq!(parse_max_age("2h"), Ok(Duration::from_secs(7200)));
        assert!(parse_max_age("never").is_err());
    }

    #[test]
    fn query_options_reject_unknown_and_misplaced_parameters() {
        let q = |pairs: &[(&str, &str)]| {
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect::<Vec<_>>()
        };
        let (name, opts) =
            file_options_from_query(&q(&[("file", "x.imp"), ("jobs", "4")]), 1, false)
                .expect("valid");
        assert_eq!(name, "x.imp");
        assert_eq!(opts.jobs, 4);
        assert!(opts.json);
        assert!(file_options_from_query(&q(&[("bogus", "1")]), 1, false).is_err());
        // cost/size only exist on the complexity endpoint.
        assert!(file_options_from_query(&q(&[("cost", "c")]), 1, false).is_err());
        assert!(file_options_from_query(&q(&[("cost", "c")]), 1, true).is_ok());
        assert!(file_options_from_query(&q(&[("jobs", "many")]), 1, false).is_err());
    }
}
