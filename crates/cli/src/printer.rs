//! Pretty-printer emitting canonical `.imp` text from [`chora_ir::Program`].
//!
//! The printer and [`crate::parser`] are inverse up to statement-sequence
//! flattening: for any program `p` produced by the parser,
//! `parse(print(p)) == p` exactly, and for an arbitrary IR program the
//! round-trip is semantics-preserving (nested `Seq`s are flattened into
//! blocks, `if`s without an `else` drop the empty branch).

use chora_ir::{CmpOp, Cond, Expr, Procedure, Program, Stmt};
use std::fmt::Write;

/// Renders a whole program.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for g in &program.globals {
        let _ = writeln!(out, "global {g};");
    }
    for (i, p) in program.procedures.iter().enumerate() {
        if i > 0 || !program.globals.is_empty() {
            out.push('\n');
        }
        print_procedure(&mut out, p);
    }
    out
}

fn print_procedure(out: &mut String, p: &Procedure) {
    let params: Vec<String> = p.params.iter().map(|s| s.to_string()).collect();
    let _ = write!(out, "proc {}({})", p.name, params.join(", "));
    if !p.locals.is_empty() {
        let locals: Vec<String> = p.locals.iter().map(|s| s.to_string()).collect();
        let _ = write!(out, " locals {}", locals.join(", "));
    }
    out.push_str(" {\n");
    print_stmt_list(out, &p.body, 1);
    out.push_str("}\n");
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

/// Prints a statement as the contents of a block, flattening `Seq` nesting.
fn print_stmt_list(out: &mut String, stmt: &Stmt, depth: usize) {
    match stmt {
        Stmt::Seq(ss) => {
            for s in ss {
                print_stmt_list(out, s, depth);
            }
        }
        s => print_stmt(out, s, depth),
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    match stmt {
        Stmt::Seq(_) => print_stmt_list(out, stmt, depth),
        Stmt::Skip => {
            indent(out, depth);
            out.push_str("skip;\n");
        }
        Stmt::Assign(v, e) => {
            indent(out, depth);
            let _ = writeln!(out, "{v} := {};", print_expr(e));
        }
        Stmt::Havoc(v) => {
            indent(out, depth);
            let _ = writeln!(out, "havoc {v};");
        }
        Stmt::Assume(c) => {
            indent(out, depth);
            let _ = writeln!(out, "assume({});", print_cond(c));
        }
        Stmt::Assert(c, label) => {
            indent(out, depth);
            let escaped = label
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            let _ = writeln!(out, "assert({}, \"{escaped}\");", print_cond(c));
        }
        Stmt::If(c, then, els) => {
            indent(out, depth);
            let _ = writeln!(out, "if ({}) {{", print_cond(c));
            print_stmt_list(out, then, depth + 1);
            indent(out, depth);
            if **els == Stmt::Skip {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                print_stmt_list(out, els, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::While(c, body) => {
            indent(out, depth);
            let _ = writeln!(out, "while ({}) {{", print_cond(c));
            print_stmt_list(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Call { callee, args, ret } => {
            indent(out, depth);
            let rendered: Vec<String> = args.iter().map(print_expr).collect();
            match ret {
                Some(r) => {
                    let _ = writeln!(out, "{r} := {callee}({});", rendered.join(", "));
                }
                None => {
                    let _ = writeln!(out, "{callee}({});", rendered.join(", "));
                }
            }
        }
        Stmt::Return(e) => {
            indent(out, depth);
            match e {
                Some(e) => {
                    let _ = writeln!(out, "return {};", print_expr(e));
                }
                None => out.push_str("return;\n"),
            }
        }
    }
}

/// Renders an expression with minimal parentheses.
pub fn print_expr(e: &Expr) -> String {
    print_expr_prec(e, 1)
}

/// Precedence levels: additive = 1, multiplicative = 2, atoms = 3.  The
/// parser is left-associative, so right operands require strictly higher
/// precedence to round-trip without parentheses.
fn expr_prec(e: &Expr) -> u8 {
    match e {
        Expr::Add(..) | Expr::Sub(..) => 1,
        Expr::Mul(..) | Expr::DivConst(..) => 2,
        Expr::Const(_) | Expr::Var(_) => 3,
    }
}

fn print_expr_prec(e: &Expr, min_prec: u8) -> String {
    let rendered = match e {
        Expr::Const(v) => v.to_string(),
        Expr::Var(s) => s.to_string(),
        Expr::Add(a, b) => {
            format!("{} + {}", print_expr_prec(a, 1), print_expr_prec(b, 2))
        }
        Expr::Sub(a, b) => {
            format!("{} - {}", print_expr_prec(a, 1), print_expr_prec(b, 2))
        }
        Expr::Mul(a, b) => {
            format!("{} * {}", print_expr_prec(a, 2), print_expr_prec(b, 3))
        }
        Expr::DivConst(a, c) => format!("{} / {c}", print_expr_prec(a, 2)),
    };
    if expr_prec(e) < min_prec {
        format!("({rendered})")
    } else {
        rendered
    }
}

/// Renders a condition with minimal parentheses.
pub fn print_cond(c: &Cond) -> String {
    print_cond_prec(c, 1)
}

/// Precedence levels: `||` = 1, `&&` = 2, atoms (`!`, comparisons,
/// `nondet`) = 3.
fn cond_prec(c: &Cond) -> u8 {
    match c {
        Cond::Or(..) => 1,
        Cond::And(..) => 2,
        Cond::Not(..) | Cond::Cmp(..) | Cond::Nondet => 3,
    }
}

fn print_cond_prec(c: &Cond, min_prec: u8) -> String {
    let rendered = match c {
        Cond::Nondet => "nondet".to_string(),
        Cond::Cmp(a, op, b) => {
            let op = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{} {op} {}", print_expr(a), print_expr(b))
        }
        Cond::Not(inner) => format!("!({})", print_cond(inner)),
        Cond::And(a, b) => {
            format!("{} && {}", print_cond_prec(a, 2), print_cond_prec(b, 3))
        }
        Cond::Or(a, b) => {
            format!("{} || {}", print_cond_prec(a, 1), print_cond_prec(b, 2))
        }
    };
    if cond_prec(c) < min_prec {
        format!("({rendered})")
    } else {
        rendered
    }
}
