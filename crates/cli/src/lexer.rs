//! Tokenizer for the `.imp` surface language.

use std::fmt;

/// A token with its source position (1-based line/column) for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    Str(String),
    Kw(Keyword),
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Assign, // :=
    Plus,
    Minus,
    Star,
    Slash,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Keyword {
    Global,
    Proc,
    Locals,
    If,
    Else,
    While,
    Assume,
    Assert,
    Return,
    Skip,
    Havoc,
    Nondet,
}

impl Keyword {
    fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s {
            "global" => Keyword::Global,
            "proc" => Keyword::Proc,
            "locals" => Keyword::Locals,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "assume" => Keyword::Assume,
            "assert" => Keyword::Assert,
            "return" => Keyword::Return,
            "skip" => Keyword::Skip,
            "havoc" => Keyword::Havoc,
            "nondet" => Keyword::Nondet,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Kw(k) => write!(f, "keyword `{k:?}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Assign => write!(f, "`:=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexer/parser error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    /// Renders the error with the offending source line and a caret marking
    /// the column, e.g.:
    ///
    /// ```text
    /// 3:15: expected statement, found `)`
    ///   3 | while (i < n) )
    ///     |               ^
    /// ```
    ///
    /// Falls back to the plain `line:col: message` form when the position
    /// lies outside `src` (e.g. an end-of-input error after the last line).
    pub fn render(&self, src: &str) -> String {
        let mut out = self.to_string();
        let Some(line_text) = src.lines().nth(self.line.saturating_sub(1)) else {
            return out;
        };
        let gutter = self.line.to_string();
        out.push_str(&format!("\n  {gutter} | {line_text}"));
        // The caret column counts characters, matching the lexer's `col`.
        let caret_offset = self.col.saturating_sub(1).min(line_text.chars().count());
        out.push_str(&format!(
            "\n  {:width$} | {:>offset$}^",
            "",
            "",
            width = gutter.len(),
            offset = caret_offset
        ));
        out
    }
}

pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(ParseError { line, col, message: format!($($arg)*) })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tline, tcol) = (line, col);
        let mut push = |kind: TokenKind| {
            tokens.push(Token {
                kind,
                line: tline,
                col: tcol,
            })
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        err!("unterminated block comment");
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                        i += 1;
                    } else {
                        // Columns count characters, so multi-byte UTF-8 in a
                        // comment must advance `col` once, not per byte.
                        let ch = src[i..].chars().next().expect("in-bounds char");
                        col += 1;
                        i += ch.len_utf8();
                    }
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                    col += 1;
                }
                let word = &src[start..i];
                match Keyword::from_ident(word) {
                    Some(kw) => push(TokenKind::Kw(kw)),
                    None => push(TokenKind::Ident(word.to_string())),
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let text = &src[start..i];
                match text.parse::<i64>() {
                    Ok(v) => push(TokenKind::Int(v)),
                    Err(_) => err!("integer literal `{text}` out of range"),
                }
            }
            '"' => {
                i += 1;
                col += 1;
                let mut out = String::new();
                loop {
                    if i >= bytes.len() || bytes[i] == b'\n' {
                        err!("unterminated string literal");
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            col += 1;
                            break;
                        }
                        b'\\' => {
                            let esc = bytes.get(i + 1).copied();
                            match esc {
                                Some(b'"') => out.push('"'),
                                Some(b'\\') => out.push('\\'),
                                Some(b'n') => out.push('\n'),
                                _ => err!("unsupported string escape"),
                            }
                            i += 2;
                            col += 2;
                        }
                        _ => {
                            // Multi-byte UTF-8 must be decoded from the
                            // source str, not pushed byte-by-byte.
                            let ch = src[i..].chars().next().expect("in-bounds char");
                            out.push(ch);
                            i += ch.len_utf8();
                            col += 1;
                        }
                    }
                }
                push(TokenKind::Str(out));
            }
            '(' => {
                push(TokenKind::LParen);
                i += 1;
                col += 1;
            }
            ')' => {
                push(TokenKind::RParen);
                i += 1;
                col += 1;
            }
            '{' => {
                push(TokenKind::LBrace);
                i += 1;
                col += 1;
            }
            '}' => {
                push(TokenKind::RBrace);
                i += 1;
                col += 1;
            }
            ',' => {
                push(TokenKind::Comma);
                i += 1;
                col += 1;
            }
            ';' => {
                push(TokenKind::Semi);
                i += 1;
                col += 1;
            }
            '+' => {
                push(TokenKind::Plus);
                i += 1;
                col += 1;
            }
            '-' => {
                push(TokenKind::Minus);
                i += 1;
                col += 1;
            }
            '*' => {
                push(TokenKind::Star);
                i += 1;
                col += 1;
            }
            '/' => {
                push(TokenKind::Slash);
                i += 1;
                col += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(TokenKind::Assign);
                    i += 2;
                    col += 2;
                } else {
                    err!("expected `:=` after `:`");
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(TokenKind::EqEq);
                    i += 2;
                    col += 2;
                } else {
                    err!("expected `==` (assignment is spelled `:=`)");
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(TokenKind::NotEq);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Bang);
                    i += 1;
                    col += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(TokenKind::Le);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Lt);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(TokenKind::Ge);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Gt);
                    i += 1;
                    col += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    push(TokenKind::AndAnd);
                    i += 2;
                    col += 2;
                } else {
                    err!("expected `&&`");
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    push(TokenKind::OrOr);
                    i += 2;
                    col += 2;
                } else {
                    err!("expected `||`");
                }
            }
            _ => {
                let other = src[i..].chars().next().expect("in-bounds char");
                err!("unexpected character `{other}`");
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}
