//! Parser/pretty-printer round-trip tests.
//!
//! The contract: for any program `p` the parser produced,
//! `parse(print(p)) == p` exactly; and for arbitrary IR programs (here: the
//! whole built-in benchmark suite), one print→parse normalization step is a
//! fixed point.

use chora_cli::{parse_program, print_program};
use chora_ir::Program;
use std::path::PathBuf;

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs")
}

fn assert_roundtrips(program: &Program, context: &str) {
    let printed = print_program(program);
    let reparsed = parse_program(&printed)
        .unwrap_or_else(|e| panic!("{context}: printed program does not reparse: {e}\n{printed}"));
    assert_eq!(
        &reparsed, program,
        "{context}: parse(print(p)) != p\nprinted:\n{printed}"
    );
}

#[test]
fn example_files_round_trip() {
    let dir = examples_dir();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/programs exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("imp") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let program =
            parse_program(&src).unwrap_or_else(|e| panic!("{}: parse error: {e}", path.display()));
        assert_roundtrips(&program, &path.display().to_string());
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected at least 4 example programs, found {checked}"
    );
}

#[test]
fn builtin_benchmark_suites_round_trip() {
    for bench in chora_bench_suite::complexity_suite::all() {
        // Arbitrary IR: one normalization step (Seq flattening, else-skip
        // dropping) must reach the parser's canonical form…
        let normalized = parse_program(&print_program(&bench.program))
            .unwrap_or_else(|e| panic!("{}: printed program does not reparse: {e}", bench.name));
        // …which then round-trips exactly.
        assert_roundtrips(&normalized, bench.name);
    }
    for bench in chora_bench_suite::assertion_suite::all() {
        let normalized = parse_program(&print_program(&bench.program))
            .unwrap_or_else(|e| panic!("{}: printed program does not reparse: {e}", bench.name));
        assert_roundtrips(&normalized, bench.name);
    }
}

#[test]
fn syntax_edge_cases_round_trip() {
    let src = r#"
global cost, depth;

proc edge(a, b) locals t, r {
    skip;
    havoc t;
    assume(a >= 0 && (b > 1 || nondet));
    t := a * (b + 1) - 2 * a / 3;
    t := -5 + a - -3;
    t := a - (b - 1);
    t := a * (b / 2);
    if (!(a == b) && a != 0) {
        r := edge(a - 1, b);
    } else {
        while (t < 10) {
            t := t + 1;
        }
    }
    assert(t >= 0, "edge label \"quoted\"");
    return t;
}

proc caller() {
    edge(1, 2);
}
"#;
    let program = parse_program(src).expect("edge-case program parses");
    assert_roundtrips(&program, "syntax edge cases");

    // Left-associativity must survive: a - b - c == (a - b) - c.
    let printed = print_program(&program);
    assert!(
        printed.contains("a * (b + 1) - 2 * a / 3"),
        "precedence-preserving rendering expected, got:\n{printed}"
    );
}

#[test]
fn assert_labels_with_escapes_and_unicode_round_trip() {
    let src = "proc f(n) { assert(n >= 0, \"line\\nbreak \\\"q\\\" café\"); }";
    let program = parse_program(src).unwrap();
    assert_roundtrips(&program, "escaped/unicode assert label");
    let printed = print_program(&program);
    assert!(printed.contains("caf\u{e9}"), "UTF-8 garbled:\n{printed}");
    assert!(
        printed.contains("\\n"),
        "newline not re-escaped:\n{printed}"
    );
}

#[test]
fn locals_are_inferred_for_undeclared_assignments() {
    let src = "proc f(n) { x := n + 1; return x; }";
    let program = parse_program(src).unwrap();
    let proc = program.procedure("f").unwrap();
    assert_eq!(proc.locals.len(), 1);
    assert_eq!(proc.locals[0].to_string(), "x");
    assert_roundtrips(&program, "inferred locals");
}

#[test]
fn parse_errors_carry_positions() {
    let err = parse_program("proc f( { }").unwrap_err();
    assert_eq!(err.line, 1);
    assert!(err.message.contains("identifier"), "got: {}", err.message);

    let err = parse_program("global x;\nproc f() {\n  y := ;\n}").unwrap_err();
    assert_eq!(err.line, 3, "got: {err}");

    // `=` instead of `:=` is the classic typo; the lexer explains it.
    let err = parse_program("proc f() { x = 1; }").unwrap_err();
    assert!(err.message.contains(":="), "got: {}", err.message);
}

#[test]
fn division_requires_positive_constant() {
    assert!(parse_program("proc f(n) { x := n / 0; }").is_err());
    assert!(parse_program("proc f(n) { x := n / m; }").is_err());
    assert!(parse_program("proc f(n) { x := n / 2; }").is_ok());
}
