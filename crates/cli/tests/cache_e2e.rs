//! End-to-end tests of the persistent summary cache: cold/warm byte
//! identity, dirty-cone invalidation on edit, and resilience against
//! corrupted or version-mismatched cache files.

use chora_cli::{analyze, analyze_with_stats, bench, BenchOptions, FileOptions};
use std::path::PathBuf;

/// A scratch directory unique to this test binary run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chora-cache-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn example(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/programs")
        .join(name)
        .display()
        .to_string()
}

/// Drops the wall-clock field so reproducibility checks compare only the
/// analysis content.
fn strip_timing(out: &str) -> String {
    out.lines()
        .filter(|l| !l.contains("analysis_ms"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn opts(path: &str, cache_dir: Option<&PathBuf>) -> FileOptions {
    FileOptions {
        path: path.to_string(),
        json: true,
        cache_dir: cache_dir.map(|d| d.display().to_string()),
        ..FileOptions::default()
    }
}

/// The three-procedure program used by the edit tests.  Only the constant
/// in `leaf` varies, so the edit leaves the interner and call graph alone.
fn layered_program(leaf_increment: i64) -> String {
    format!(
        "global cost;\n\n\
         proc leaf(n) {{\n    cost := cost + {leaf_increment};\n}}\n\n\
         proc other(n) {{\n    cost := cost + 2;\n}}\n\n\
         proc main(n) {{\n    leaf(n);\n    other(n);\n    assert(cost >= 0 || nondet, \"nonneg\");\n}}\n"
    )
}

#[test]
fn warm_run_is_all_hits_and_byte_identical() {
    let dir = scratch("warm");
    let cache = dir.join("cache");
    let path = example("merge-sort.imp");

    let (cold_out, cold_exit, cold_stats) =
        analyze_with_stats(&opts(&path, Some(&cache))).expect("cold run");
    let cold_stats = cold_stats.expect("stats when cache is on");
    assert_eq!(cold_stats.hits, 0);
    assert!(cold_stats.misses > 0);

    let (warm_out, warm_exit, warm_stats) =
        analyze_with_stats(&opts(&path, Some(&cache))).expect("warm run");
    let warm_stats = warm_stats.expect("stats when cache is on");
    assert_eq!(warm_exit, cold_exit);
    assert_eq!(
        warm_stats.misses, 0,
        "second run on an unchanged program must be 100% hits: {warm_stats}"
    );
    assert_eq!(warm_stats.hits, cold_stats.misses);
    assert_eq!(warm_stats.evictions, 0);
    assert_eq!(
        strip_timing(&cold_out),
        strip_timing(&warm_out),
        "cold and warm stdout must be byte-identical"
    );

    // ... and identical to an uncached analysis.
    let (plain_out, _, plain_stats) = analyze_with_stats(&FileOptions {
        no_cache: true,
        ..opts(&path, Some(&cache))
    })
    .expect("uncached run");
    assert!(plain_stats.is_none(), "--no-cache must disable the store");
    assert_eq!(strip_timing(&plain_out), strip_timing(&warm_out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn editing_a_leaf_reanalyzes_only_its_dependents() {
    let dir = scratch("edit");
    let cache = dir.join("cache");
    let path = dir.join("prog.imp").display().to_string();

    std::fs::write(&path, layered_program(1)).expect("write program");
    let (_, _, stats) = analyze_with_stats(&opts(&path, Some(&cache))).expect("cold run");
    assert_eq!(stats.expect("stats").misses, 3, "leaf, other, main");

    // Edit `leaf`: its own component and the `main` component (its caller)
    // are dirty; the independent `other` component stays cached.
    std::fs::write(&path, layered_program(7)).expect("edit program");
    let (edited_out, _, stats) =
        analyze_with_stats(&opts(&path, Some(&cache))).expect("edited run");
    let stats = stats.expect("stats");
    assert_eq!(stats.hits, 1, "`other` must be served from cache: {stats}");
    assert_eq!(stats.misses, 2, "`leaf` and `main` must be re-summarized");

    // The partially-cached analysis matches a from-scratch analysis of the
    // edited program byte for byte.
    let (fresh_out, _, _) = analyze_with_stats(&FileOptions {
        no_cache: true,
        ..opts(&path, Some(&cache))
    })
    .expect("fresh run");
    assert_eq!(strip_timing(&edited_out), strip_timing(&fresh_out));

    // Reverting the edit hits everything again (the old entries are still
    // there — the cache is content-addressed, not last-write-wins).
    std::fs::write(&path, layered_program(1)).expect("revert program");
    let (_, _, stats) = analyze_with_stats(&opts(&path, Some(&cache))).expect("revert run");
    assert_eq!(stats.expect("stats").hits, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `layered_program` with an unrelated procedure inserted at `position`
/// among the existing ones (0 = first): same components plus one, shifted
/// through the bottom-up schedule.
fn padded_program(leaf_increment: i64, position: usize) -> String {
    let pad = "proc unrelated(n) locals q {\n    q := n / 2;\n    cost := cost + q;\n}\n";
    let base = layered_program(leaf_increment);
    let mut pieces: Vec<&str> = base.split("proc ").collect();
    // pieces[0] is the globals header; procedure i lives at pieces[i + 1].
    let mut out = String::from(pieces.remove(0));
    pieces.insert(position, pad.trim_start_matches("proc "));
    for p in pieces {
        out.push_str("proc ");
        out.push_str(p.trim_end());
        out.push_str("\n\n");
    }
    out
}

#[test]
fn prepending_a_procedure_keeps_preexisting_components_warm() {
    let dir = scratch("prepend");
    let cache = dir.join("cache");
    let path = dir.join("prog.imp").display().to_string();
    let run = |src: &str, no_cache: bool| {
        std::fs::write(&path, src).expect("write program");
        analyze_with_stats(&FileOptions {
            no_cache,
            procedure: Some("main".to_string()),
            ..opts(&path, Some(&cache))
        })
        .expect("analyze")
    };

    let (_, _, stats) = run(&layered_program(1), false);
    assert_eq!(stats.expect("stats").misses, 3, "leaf, other, main");

    // Prepend an unrelated procedure: every preexisting component shifts
    // one slot down the bottom-up schedule, yet all of them must hit — only
    // the newcomer is summarized — and stdout must match a from-scratch
    // analysis of the new program byte for byte.
    let (warm_out, warm_exit, stats) = run(&padded_program(1, 0), false);
    let stats = stats.expect("stats");
    assert_eq!(
        stats.misses, 1,
        "only the prepended component may miss: {stats}"
    );
    assert_eq!(stats.hits, 3, "every preexisting component must hit");
    assert_eq!(stats.evictions, 0);
    let (fresh_out, fresh_exit, _) = run(&padded_program(1, 0), true);
    assert_eq!(strip_timing(&warm_out), strip_timing(&fresh_out));
    assert_eq!(warm_exit, fresh_exit);

    // Reordering the same procedures (the pad moved to the end) changes
    // nothing content-wise: 100% hits, byte-identical output again.
    let (moved_out, _, stats) = run(&padded_program(1, 3), false);
    let stats = stats.expect("stats");
    assert_eq!(stats.misses, 0, "a pure reorder must be all hits: {stats}");
    assert_eq!(stats.hits, 4);
    let (moved_fresh, _, _) = run(&padded_program(1, 3), true);
    assert_eq!(strip_timing(&moved_out), strip_timing(&moved_fresh));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_and_version_mismatched_entries_are_evicted_not_fatal() {
    let dir = scratch("corrupt");
    let cache = dir.join("cache");
    let path = example("hanoi.imp");

    let (cold_out, _, _) = analyze_with_stats(&opts(&path, Some(&cache))).expect("cold run");
    let entries_dir = cache.join(format!("v{}", chora_core::cache::CACHE_VERSION));
    let entries: Vec<PathBuf> = std::fs::read_dir(&entries_dir)
        .expect("cache dir exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!entries.is_empty(), "cold run must populate the cache");

    // Corrupt every entry: truncated JSON, garbage, version bump.
    for (i, entry) in entries.iter().enumerate() {
        match i % 3 {
            0 => std::fs::write(entry, "{\"format\":\"chora-summary-cache\",").unwrap(),
            1 => std::fs::write(entry, "complete garbage").unwrap(),
            _ => {
                let text = std::fs::read_to_string(entry).unwrap();
                std::fs::write(entry, text.replace("\"version\":2", "\"version\":99")).unwrap();
            }
        }
    }
    let (out, exit, stats) =
        analyze_with_stats(&opts(&path, Some(&cache))).expect("corrupted cache must not be fatal");
    let stats = stats.expect("stats");
    assert_eq!(stats.hits, 0, "corrupted entries must not hit");
    assert_eq!(
        stats.evictions,
        entries.len() as u64,
        "every corrupted entry must be evicted"
    );
    assert_eq!(strip_timing(&out), strip_timing(&cold_out));
    assert_eq!(exit, 0);

    // The eviction re-populated the cache: the next run is all hits again.
    let (_, _, stats) = analyze_with_stats(&opts(&path, Some(&cache))).expect("repopulated");
    let stats = stats.expect("stats");
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.evictions, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_stats_stay_off_stdout() {
    // `analyze` (the CLI surface) reports stats on stderr only; stdout must
    // not mention the cache at all, in either output mode.
    let dir = scratch("stdout");
    let cache = dir.join("cache");
    let path = example("fib.imp");
    for json in [true, false] {
        let options = FileOptions {
            json,
            ..opts(&path, Some(&cache))
        };
        let (out, _) = analyze(&options).expect("analyze runs");
        assert!(
            !out.contains("cache"),
            "stdout must not mention the cache (json={json}):\n{out}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_reports_cold_and_warm_wall_clock() {
    let dir = scratch("bench");
    let cache = dir.join("cache");
    let programs = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/programs")
        .display()
        .to_string();
    let (out, exit) = bench(&BenchOptions {
        json: true,
        filter: Some("fib".to_string()),
        programs_dir: Some(programs),
        cache_dir: Some(cache.display().to_string()),
        ..BenchOptions::default()
    })
    .expect("bench runs");
    assert_eq!(exit, 0);
    assert!(out.contains("\"cold_ms\""), "got:\n{out}");
    assert!(out.contains("\"warm_ms\""), "got:\n{out}");
    assert!(out.contains("\"warm_cache\""), "got:\n{out}");
    assert!(out.contains("\"misses\": 0"), "warm run must hit:\n{out}");
    assert!(out.contains("\"parse_ms\""), "got:\n{out}");
    assert!(out.contains("\"summarize_ms\""), "got:\n{out}");
    assert!(out.contains("\"solve_ms\""), "got:\n{out}");
    assert!(out.contains("\"check_ms\""), "got:\n{out}");
    let _ = std::fs::remove_dir_all(&dir);
}
