//! Concurrency stress tests of the shared on-disk summary cache: multiple
//! store handles (separate opens, as separate `chora` processes would
//! hold) analyzing overlapping programs at the same time must never
//! panic, never serve a torn entry, and keep every report byte-identical
//! to an uncached analysis.

use chora_cli::{analyze_source, FileOptions};
use chora_core::{DiskStore, SummaryStore, TieredConfig, TieredStore};
use std::path::PathBuf;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chora-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A layered program family: `variant` only changes a constant in `leaf`,
/// so different variants share call-graph shape but differ in content —
/// overlapping work with distinct cache keys.
fn program(variant: usize) -> String {
    format!(
        "global cost;\n\n\
         proc leaf(n) {{\n    cost := cost + {variant};\n}}\n\n\
         proc work(n) {{\n    cost := cost + 1;\n    if (n > 0) {{\n        work(n - 1);\n        work(n - 1);\n    }}\n}}\n\n\
         proc main(n) {{\n    leaf(n);\n    work(n);\n    assert(cost >= 0 || nondet, \"nonneg\");\n}}\n"
    )
}

fn opts() -> FileOptions {
    FileOptions {
        json: true,
        quiet: true,
        ..FileOptions::default()
    }
}

/// The uncached reference report of one variant.
fn reference(variant: usize) -> String {
    let (out, _, _) = analyze_source(&format!("v{variant}"), &program(variant), &opts(), None)
        .expect("uncached analysis");
    strip_timing(&out)
}

fn strip_timing(out: &str) -> String {
    out.lines()
        .filter(|l| !l.contains("analysis_ms"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs `rounds` analyses of each variant in `variants` through `store`,
/// asserting byte-identity against the references.
fn hammer(
    store: &dyn SummaryStore,
    variants: std::ops::Range<usize>,
    rounds: usize,
    references: &[String],
) {
    for _ in 0..rounds {
        for v in variants.clone() {
            let (out, _, _) = analyze_source(&format!("v{v}"), &program(v), &opts(), Some(store))
                .expect("cached analysis");
            assert_eq!(
                strip_timing(&out),
                references[v],
                "variant {v} diverged under concurrent store traffic"
            );
        }
    }
}

#[test]
fn two_disk_store_handles_analyze_overlapping_programs_concurrently() {
    let root = scratch("disk");
    let references: Vec<String> = (0..10).map(reference).collect();

    // Two handles over the same root, opened independently — the same
    // situation as two `chora` processes sharing one --cache-dir.  Their
    // variant ranges overlap on 3..7, so both race on the same keys.
    let store_a = DiskStore::open(&root).expect("open a");
    let store_b = DiskStore::open(&root).expect("open b");
    std::thread::scope(|scope| {
        let refs = &references;
        let a = scope.spawn(|| hammer(&store_a, 0..7, 3, refs));
        let b = scope.spawn(|| hammer(&store_b, 3..10, 3, refs));
        a.join().expect("writer A must not panic");
        b.join().expect("writer B must not panic");
    });
    assert_eq!(store_a.evictions(), 0, "no torn entries on handle A");
    assert_eq!(store_b.evictions(), 0, "no torn entries on handle B");

    // A fresh handle sees only whole entries: a full warm pass is 100%
    // hits with zero corruption evictions.
    let fresh = DiskStore::open(&root).expect("open fresh");
    for (v, expected) in references.iter().enumerate() {
        let (out, _, stats) = analyze_source(&format!("v{v}"), &program(v), &opts(), Some(&fresh))
            .expect("warm analysis");
        let stats = stats.expect("stats with a store");
        assert_eq!(stats.misses, 0, "variant {v} must be fully warm: {stats}");
        assert_eq!(stats.evictions, 0, "variant {v} hit a torn entry: {stats}");
        assert_eq!(&strip_timing(&out), expected);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn two_tiered_store_handles_race_with_eviction_pressure() {
    let root = scratch("tiered");
    let references: Vec<String> = (0..8).map(reference).collect();

    // Independent tiered handles over one disk root, with a byte cap well
    // below the working set and an expiry short enough to fire mid-run:
    // LRU, age eviction, disk GC, and cross-handle promotion all race.
    let open = || {
        TieredStore::open(
            &root,
            TieredConfig {
                cap_bytes: Some(2048),
                max_age: Some(Duration::from_millis(40)),
                shards: 2,
            },
        )
        .expect("open tiered")
    };
    let store_a = open();
    let store_b = open();
    std::thread::scope(|scope| {
        let refs = &references;
        let gc = scope.spawn(|| {
            // A concurrent GC thread, like the daemon's housekeeping.
            for _ in 0..20 {
                store_a.gc();
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let a = scope.spawn(|| hammer(&store_a, 0..5, 4, refs));
        let b = scope.spawn(|| hammer(&store_b, 2..8, 4, refs));
        a.join().expect("handle A must not panic");
        b.join().expect("handle B must not panic");
        gc.join().expect("GC thread must not panic");
    });
    for store in [&store_a, &store_b] {
        let c = store.counters();
        assert_eq!(
            c.corrupt_evictions, 0,
            "churn must never manifest as corruption: {c:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}
