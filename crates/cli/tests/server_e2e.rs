//! End-to-end tests of `chora serve`: byte-identity of daemon responses
//! against the CLI documents, the in-memory warm path, error envelopes,
//! concurrent clients, graceful shutdown draining, batch vs single-shot
//! byte-identity, and eviction under a byte cap never corrupting a
//! response.
//!
//! Every test runs its own daemon on an ephemeral port via
//! [`chora_cli::spawn_server`] and talks real HTTP through the bundled
//! client.

use chora_cli::json::Json;
use chora_cli::{analyze_with_stats, spawn_server, FileOptions, ServeOptions};
use chora_server::client::Client;
use chora_server::http::encode_query_component;
use std::path::PathBuf;

fn example(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/programs")
        .join(name)
        .display()
        .to_string()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chora-server-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One request on a fresh connection (most tests don't care about reuse;
/// `crates/server/tests/keepalive.rs` covers the connection lifecycle).
fn one_shot(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    Client::new(addr).send(method, path, body)
}

/// Drops wall-clock fields so byte-identity checks compare analysis
/// content only.
fn strip_timing(out: &str) -> String {
    out.lines()
        .filter(|l| !l.contains("analysis_ms"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The `chora analyze --json` reference document for a program.
fn cli_reference(path: &str, jobs: usize) -> String {
    let (out, _, _) = analyze_with_stats(&FileOptions {
        path: path.to_string(),
        json: true,
        jobs,
        quiet: true,
        ..FileOptions::default()
    })
    .expect("CLI analyze");
    out
}

/// Ephemeral-port daemon with the given store options.
fn daemon(
    opts: ServeOptions,
) -> (
    chora_server::ServerHandle,
    std::sync::Arc<chora_cli::AnalysisService>,
) {
    spawn_server(&ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        quiet: true,
        ..opts
    })
    .expect("spawn daemon")
}

/// POSTs an explicit source under an explicit display name.
fn post_source(addr: &str, file: &str, source: &str, extra_query: &str) -> (u16, String) {
    let path = format!(
        "/v1/analyze?file={}{extra_query}",
        encode_query_component(file)
    );
    one_shot(addr, "POST", &path, Some(source)).expect("request")
}

fn post_analyze(addr: &str, file: &str, extra_query: &str) -> (u16, String) {
    let source = std::fs::read_to_string(file).expect("read example");
    post_source(addr, file, &source, extra_query)
}

/// Pulls one integer counter out of the `/v1/stats` JSON.
fn stat(addr: &str, name: &str) -> u64 {
    let (status, body) = one_shot(addr, "GET", "/v1/stats", None).expect("stats");
    assert_eq!(status, 200, "{body}");
    let needle = format!("\"{name}\": ");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no {name} in:\n{body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter value")
}

#[test]
fn analyze_responses_are_byte_identical_to_the_cli_cold_and_warm() {
    let dir = scratch("identity");
    let (handle, _service) = daemon(ServeOptions {
        cache_dir: Some(dir.join("cache").display().to_string()),
        ..ServeOptions::default()
    });
    let addr = handle.addr().to_string();
    for name in ["fib.imp", "hanoi.imp", "merge-sort.imp", "height.imp"] {
        let file = example(name);
        for jobs in [1usize, 4] {
            let reference = strip_timing(&cli_reference(&file, jobs));
            let query = format!("&jobs={jobs}");
            let (status, cold) = post_analyze(&addr, &file, &query);
            assert_eq!(status, 200, "{cold}");
            let (status, warm) = post_analyze(&addr, &file, &query);
            assert_eq!(status, 200, "{warm}");
            assert_eq!(
                strip_timing(&cold),
                reference,
                "cold {name} (jobs={jobs}) must match the CLI document"
            );
            assert_eq!(
                strip_timing(&warm),
                reference,
                "warm {name} (jobs={jobs}) must match the CLI document"
            );
        }
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_responses_match_the_checked_in_goldens_cold_and_warm() {
    // The small-integer numeric fast path is an *exact* optimization: the
    // daemon's documents — cold and response-cache warm — must stay
    // byte-identical (timing stripped) to the goldens recorded before the
    // fast path landed.
    let (handle, _service) = daemon(ServeOptions::default());
    let addr = handle.addr().to_string();
    for name in ["fib", "hanoi", "merge-sort", "height"] {
        let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/goldens")
            .join(format!("{name}.analyze.json"));
        let golden = std::fs::read_to_string(&golden_path).expect("read golden");
        let source = std::fs::read_to_string(example(&format!("{name}.imp"))).expect("read");
        // The goldens were recorded by running the CLI from the repo root,
        // so the daemon is given the same repo-relative display name.
        let file = format!("examples/programs/{name}.imp");
        let (status, cold) = post_source(&addr, &file, &source, "");
        assert_eq!(status, 200, "{cold}");
        let (status, warm) = post_source(&addr, &file, &source, "");
        assert_eq!(status, 200, "{warm}");
        assert_eq!(
            strip_timing(&cold),
            strip_timing(&golden),
            "cold {name} diverged from the pre-fast-path golden"
        );
        assert_eq!(
            strip_timing(&warm),
            strip_timing(&golden),
            "warm {name} diverged from the pre-fast-path golden"
        );
    }
    handle.shutdown();
}

#[test]
fn warm_requests_are_served_from_the_memory_tier() {
    let dir = scratch("warmpath");
    let (handle, _service) = daemon(ServeOptions {
        cache_dir: Some(dir.join("cache").display().to_string()),
        ..ServeOptions::default()
    });
    let addr = handle.addr().to_string();
    let file = example("fib.imp");
    let source = std::fs::read_to_string(&file).expect("read example");
    let (status, _) = post_source(&addr, &file, &source, "");
    assert_eq!(status, 200);
    let probes_after_cold = stat(&addr, "disk_probes");
    let mem_hits_after_cold = stat(&addr, "mem_hits");
    let response_hits_after_cold = stat(&addr, "response_hits");

    // Byte-identical repeats are fully warm: the rendered-response cache
    // answers before the summary store is even probed (and the parse
    // cache registers the hit that precedes it).
    for _ in 0..3 {
        let (status, _) = post_source(&addr, &file, &source, "");
        assert_eq!(status, 200);
    }
    assert_eq!(
        stat(&addr, "response_hits"),
        response_hits_after_cold + 3,
        "identical repeats must be served from the response cache"
    );
    assert_eq!(
        stat(&addr, "mem_hits"),
        mem_hits_after_cold,
        "identical repeats must not reach the summary store at all"
    );
    assert!(
        stat(&addr, "parse_hits") >= 3,
        "repeats share the parsed program"
    );

    // An edited source — new bytes, same program (a trailing comment) —
    // misses both request caches and re-analyzes, but every procedure
    // summary comes out of the store's memory tier, never the disk.
    for round in 0..3 {
        let edited = format!("{source}\n// warm round {round}\n");
        let (status, _) = post_source(&addr, &file, &edited, "");
        assert_eq!(status, 200);
    }
    assert_eq!(
        stat(&addr, "disk_probes"),
        probes_after_cold,
        "warm re-analyses must perform 0 disk reads"
    );
    assert!(
        stat(&addr, "mem_hits") > mem_hits_after_cold,
        "warm re-analyses must hit the memory tier"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_responses_are_byte_identical_to_single_shot_sequences() {
    let names = ["fib.imp", "hanoi.imp", "merge-sort.imp", "height.imp"];

    // One daemon answers each program single-shot...
    let (singles_handle, _singles_service) = daemon(ServeOptions::default());
    let singles_addr = singles_handle.addr().to_string();
    let mut singles = Vec::new();
    for name in &names {
        let (status, body) = post_analyze(&singles_addr, &example(name), "");
        assert_eq!(status, 200, "{body}");
        singles.push(body);
    }
    singles_handle.shutdown();

    // ... and a *fresh* daemon (nothing precomputed, so the batch driver
    // does all the work) answers the same programs as one /v1/batch.
    let (batch_handle, _batch_service) = daemon(ServeOptions::default());
    let batch_addr = batch_handle.addr().to_string();
    let elements: Vec<Json> = names
        .iter()
        .map(|name| {
            let file = example(name);
            let source = std::fs::read_to_string(&file).expect("read example");
            Json::object()
                .field("file", Json::str(file.as_str()))
                .field("source", Json::str(source))
        })
        .collect();
    let body = Json::Array(elements).pretty();
    let (status, batch) = one_shot(&batch_addr, "POST", "/v1/batch", Some(&body)).expect("batch");
    assert_eq!(status, 200, "{batch}");

    let expected = format!(
        "[\n{}\n]\n",
        singles
            .iter()
            .map(|doc| doc.trim_end_matches('\n'))
            .collect::<Vec<_>>()
            .join(",\n")
    );
    assert_eq!(
        strip_timing(&batch),
        strip_timing(&expected),
        "each batch element must be byte-identical to its single-shot response"
    );

    // An identical second batch is answered entirely from the response
    // cache — byte-for-byte, timing lines included.
    let (status, again) =
        one_shot(&batch_addr, "POST", "/v1/batch", Some(&body)).expect("batch again");
    assert_eq!(status, 200);
    assert_eq!(again, batch, "a warm batch replays the cached documents");
    assert!(
        stat(&batch_addr, "response_hits") >= names.len() as u64,
        "warm batch elements must hit the response cache"
    );

    // An element that fails to parse becomes an inline error envelope;
    // the batch itself still succeeds with index-aligned responses.
    let fib = std::fs::read_to_string(example("fib.imp")).expect("read example");
    let broken = Json::Array(vec![Json::str("broken {"), Json::str(fib.as_str())]).pretty();
    let (status, out) =
        one_shot(&batch_addr, "POST", "/v1/batch", Some(&broken)).expect("broken batch");
    assert_eq!(status, 200, "{out}");
    assert!(out.starts_with("[\n{\"error\": "), "{out}");
    assert!(out.contains("\"procedures\""), "{out}");
    batch_handle.shutdown();
}

#[test]
fn batch_documents_are_independent_of_the_jobs_parameter() {
    // The ready-queue scheduler merges every program of a batch into one
    // task graph; whatever `?jobs=N` asks for, the canonical fold order
    // must render byte-identical documents.  Each worker count gets a
    // fresh daemon so nothing is replayed from a response cache.
    let names = ["fib.imp", "hanoi.imp", "merge-sort.imp", "height.imp"];
    let elements: Vec<Json> = names
        .iter()
        .map(|name| {
            let file = example(name);
            let source = std::fs::read_to_string(&file).expect("read example");
            Json::object()
                .field("file", Json::str(file.as_str()))
                .field("source", Json::str(source))
        })
        .collect();
    let body = Json::Array(elements).pretty();
    let mut documents = Vec::new();
    for jobs in [1usize, 2, 8] {
        let (handle, _service) = daemon(ServeOptions::default());
        let addr = handle.addr().to_string();
        let path = format!("/v1/batch?jobs={jobs}");
        let (status, out) = one_shot(&addr, "POST", &path, Some(&body)).expect("batch");
        assert_eq!(status, 200, "{out}");
        documents.push((jobs, strip_timing(&out)));
        handle.shutdown();
    }
    let (_, reference) = &documents[0];
    for (jobs, doc) in &documents[1..] {
        assert_eq!(
            doc, reference,
            "/v1/batch?jobs={jobs} must match the jobs=1 documents"
        );
    }
}

#[test]
fn malformed_requests_get_json_error_envelopes() {
    let (handle, _service) = daemon(ServeOptions::default());
    let addr = handle.addr().to_string();

    // Unparseable source: 400 with the parser's rendering in the envelope.
    let (status, body) =
        one_shot(&addr, "POST", "/v1/analyze", Some("definitely not imp")).expect("request");
    assert_eq!(status, 400);
    assert!(body.starts_with("{\"error\": "), "{body}");

    // Unknown query parameter: 400.
    let (status, body) =
        one_shot(&addr, "POST", "/v1/analyze?wibble=1", Some("global cost;")).expect("request");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown query parameter"), "{body}");

    // Unknown endpoint: 404; wrong method: 405 — all JSON envelopes.
    let (status, body) = one_shot(&addr, "GET", "/v2/nope", None).expect("request");
    assert_eq!(status, 404);
    assert!(body.contains("\"error\""), "{body}");
    let (status, body) = one_shot(&addr, "GET", "/v1/analyze", None).expect("request");
    assert_eq!(status, 405);
    assert!(body.contains("\"error\""), "{body}");

    // Raw protocol garbage: still an orderly 400, never a hung socket.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream.write_all(b"NONSENSE\r\n\r\n").expect("write");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    // Conflicting duplicate Content-Length headers: 400 with a JSON
    // envelope (first-wins would be a request-smuggling hazard).
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(
            b"POST /v1/analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\
              Content-Length: 2\r\nConnection: close\r\n\r\nabcd",
        )
        .expect("write");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(
        response.contains("conflicting duplicate Content-Length"),
        "{response}"
    );

    // ... while duplicates that agree are harmless.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(
            b"POST /v1/healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\
              Content-Length: 0\r\nConnection: close\r\n\r\n",
        )
        .expect("write");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    assert!(
        response.starts_with("HTTP/1.1 405") || response.starts_with("HTTP/1.1 200"),
        "agreeing duplicates must not 400: {response}"
    );

    handle.shutdown();
}

#[test]
fn concurrent_clients_all_get_correct_responses() {
    let dir = scratch("concurrent");
    let (handle, _service) = daemon(ServeOptions {
        jobs: 4,
        cache_dir: Some(dir.join("cache").display().to_string()),
        ..ServeOptions::default()
    });
    let addr = handle.addr().to_string();
    let names = ["fib.imp", "hanoi.imp", "merge-sort.imp"];
    let references: Vec<String> = names
        .iter()
        .map(|n| strip_timing(&cli_reference(&example(n), 1)))
        .collect();

    let results: Vec<(usize, u16, String)> = std::thread::scope(|scope| {
        let addr = &addr;
        (0..9)
            .map(|i| {
                scope.spawn(move || {
                    let (status, body) = post_analyze(addr, &example(names[i % 3]), "");
                    (i % 3, status, body)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().expect("client thread"))
            .collect()
    });
    for (which, status, body) in results {
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            strip_timing(&body),
            references[which],
            "concurrent response for {} diverged",
            names[which]
        );
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (handle, _service) = daemon(ServeOptions {
        jobs: 2,
        ..ServeOptions::default()
    });
    let addr = handle.addr().to_string();
    let file = example("merge-sort.imp");
    let reference = strip_timing(&cli_reference(&file, 1));

    let responses: Vec<(u16, String)> = std::thread::scope(|scope| {
        let addr = &addr;
        let file = &file;
        let clients: Vec<_> = (0..6)
            .map(|i| {
                scope.spawn(move || {
                    // Distinct trailing comments keep every in-flight
                    // request a real analysis (no response-cache hits),
                    // so the drain has actual work to finish.
                    let source = std::fs::read_to_string(file).expect("read example");
                    let edited = format!("{source}\n// drain client {i}\n");
                    post_source(addr, file, &edited, "")
                })
            })
            .collect();
        // Let the clients connect and queue up on the two workers, then
        // ask the daemon to shut down while their analyses are in flight.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let (status, body) = one_shot(addr, "POST", "/v1/shutdown", None).expect("shutdown");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"draining\": true"), "{body}");
        clients
            .into_iter()
            .map(|t| t.join().expect("client thread"))
            .collect()
    });
    for (status, body) in responses {
        assert_eq!(status, 200, "in-flight work must be drained, got: {body}");
        assert_eq!(strip_timing(&body), reference, "drained response diverged");
    }
    handle.shutdown(); // Joins the already-stopping daemon.
    assert!(
        one_shot(&addr, "GET", "/v1/healthz", None).is_err(),
        "daemon must be gone after the drain"
    );
}

#[test]
fn metrics_stats_and_traced_requests_expose_the_telemetry_surface() {
    let (handle, _service) = daemon(ServeOptions::default());
    let addr = handle.addr().to_string();
    let file = example("fib.imp");
    let (status, _) = post_analyze(&addr, &file, "");
    assert_eq!(status, 200);

    // /v1/metrics speaks the Prometheus text format: HELP/TYPE comments,
    // then `name{labels} value` samples, including the request counters the
    // analyze call above just bumped.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"GET /v1/metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .expect("write");
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(
        raw.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "metrics must use the Prometheus content type: {raw}"
    );
    let body = raw.split("\r\n\r\n").nth(1).expect("metrics body");
    for needle in [
        "# HELP chora_http_requests_total",
        "# TYPE chora_http_requests_total counter",
        "chora_http_requests_total{endpoint=\"/v1/analyze\",class=\"2xx\"}",
        "chora_analyses_total",
        "chora_fm_rows_generated_total",
        "chora_process_start_time_ms",
    ] {
        assert!(body.contains(needle), "missing `{needle}` in:\n{body}");
    }
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let value = line.rsplit(' ').next().expect("sample value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample line: {line}"
        );
    }

    // /v1/stats carries the new lifecycle fields alongside the counters.
    let (status, stats) = one_shot(&addr, "GET", "/v1/stats", None).expect("stats");
    assert_eq!(status, 200, "{stats}");
    for field in ["\"started_unix_ms\": ", "\"gc\": ", "\"evicted_bytes\": "] {
        assert!(stats.contains(field), "missing {field} in:\n{stats}");
    }

    // ?trace=1 splices a Chrome trace into the document without perturbing
    // the analysis content.  A program the daemon has not seen yet runs
    // cold, so the trace records the real phase spans; the traced response
    // bypasses the response cache in both directions, so the plain repeat
    // that follows is trace-free.
    let fresh = example("hanoi.imp");
    let (status, traced) = post_analyze(&addr, &fresh, "&trace=1");
    assert_eq!(status, 200, "{traced}");
    assert!(traced.contains("\"trace\": {\"traceEvents\":["), "{traced}");
    assert!(traced.contains("\"name\":\"summarize\""), "{traced}");
    let (status, plain) = post_analyze(&addr, &fresh, "");
    assert_eq!(status, 200);
    assert!(
        !plain.contains("\"traceEvents\""),
        "a traced document must never be cached: {plain}"
    );
    let strip_trace = |doc: &str| {
        strip_timing(doc)
            .lines()
            .filter(|l| !l.contains("\"trace\": "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_trace(&traced).replace(",\n", "\n"),
        strip_trace(&plain).replace(",\n", "\n"),
        "the traced document must carry the same analysis content"
    );
    handle.shutdown();
}

#[test]
fn a_byte_capped_store_evicts_without_ever_corrupting_a_response() {
    let dir = scratch("capped");
    // A cap far below the working set (4 programs ≈ several KiB of
    // entries): the memory tier thrashes, the disk tier backs it up.
    let (handle, service) = daemon(ServeOptions {
        cache_dir: Some(dir.join("cache").display().to_string()),
        cache_cap_bytes: Some(2048),
        ..ServeOptions::default()
    });
    let addr = handle.addr().to_string();
    let names = ["fib.imp", "hanoi.imp", "merge-sort.imp", "height.imp"];
    let references: Vec<String> = names
        .iter()
        .map(|n| strip_timing(&cli_reference(&example(n), 1)))
        .collect();
    for round in 0..3 {
        for (i, name) in names.iter().enumerate() {
            // A round-tagged comment defeats the request caches (new
            // source bytes, same program), so every round re-analyzes
            // through the byte-capped summary store.
            let file = example(name);
            let source = std::fs::read_to_string(&file).expect("read example");
            let edited = format!("{source}\n// eviction round {round}\n");
            let (status, body) = post_source(&addr, &file, &edited, "");
            assert_eq!(status, 200, "{body}");
            assert_eq!(
                strip_timing(&body),
                references[i],
                "round {round}: {name} must stay byte-identical under eviction pressure"
            );
        }
    }
    let counters = service.store().counters();
    assert!(
        counters.mem_bytes <= 2048,
        "the memory tier must respect its byte cap: {counters:?}"
    );
    assert!(
        counters.mem_entries < counters.stores,
        "a cap below the working set must keep part of it out of memory: {counters:?}"
    );
    assert!(
        counters.disk_hits > 0,
        "entries pushed out of memory must be re-served from the disk tier: {counters:?}"
    );
    assert_eq!(
        counters.corrupt_evictions, 0,
        "eviction pressure must never corrupt an entry: {counters:?}"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
