//! Property tests for the structural fingerprints behind the summary cache:
//!
//! * the fingerprint of every procedure is invariant under a
//!   pretty-print→re-parse round trip (the cache must keep hitting when a
//!   program is regenerated from source),
//! * the fingerprint is invariant under variable-order-preserving renames
//!   of fresh symbols (alpha-invariance of anonymous temporaries),
//! * a single-statement edit changes exactly the keys of the edited
//!   procedure and its transitive callers — the dirty cone — and nothing
//!   else.
//!
//! Programs are generated from a `u64` seed with a local splitmix RNG (the
//! vendored proptest shim provides seeds and deterministic replay; the
//! recursive AST generator lives here).

use chora_cli::{parse_program, print_program};
use chora_ir::fingerprint::{procedure_fingerprint, procedure_keys, Fingerprint};
use chora_ir::{CallGraph, Cond, Expr, Procedure, Program, Stmt};
use proptest::prelude::*;

/// Deterministic splitmix64, same construction as the proptest shim.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

const VARS: &[&str] = &["a", "b", "n", "t"];

fn gen_var(g: &mut Gen) -> &'static str {
    VARS[g.below(VARS.len() as u64) as usize]
}

fn gen_expr(g: &mut Gen, depth: u32) -> Expr {
    if depth == 0 {
        return match g.below(2) {
            0 => Expr::var(gen_var(g)),
            _ => Expr::int(g.below(21) as i64 - 10),
        };
    }
    match g.below(6) {
        0 => Expr::var(gen_var(g)),
        1 => Expr::int(g.below(21) as i64 - 10),
        2 => gen_expr(g, depth - 1).add(gen_expr(g, depth - 1)),
        3 => gen_expr(g, depth - 1).sub(gen_expr(g, depth - 1)),
        4 => gen_expr(g, depth - 1).mul(gen_expr(g, depth - 1)),
        _ => gen_expr(g, depth - 1).div(1 + g.below(4) as i64),
    }
}

fn gen_cond(g: &mut Gen, depth: u32) -> Cond {
    if depth == 0 || g.below(3) == 0 {
        return match g.below(7) {
            0 => Cond::Nondet,
            1 => Cond::le(gen_expr(g, 1), gen_expr(g, 1)),
            2 => Cond::lt(gen_expr(g, 1), gen_expr(g, 1)),
            3 => Cond::ge(gen_expr(g, 1), gen_expr(g, 1)),
            4 => Cond::gt(gen_expr(g, 1), gen_expr(g, 1)),
            5 => Cond::eq(gen_expr(g, 1), gen_expr(g, 1)),
            _ => Cond::ne(gen_expr(g, 1), gen_expr(g, 1)),
        };
    }
    match g.below(3) {
        0 => gen_cond(g, depth - 1).and(gen_cond(g, depth - 1)),
        1 => gen_cond(g, depth - 1).or(gen_cond(g, depth - 1)),
        _ => gen_cond(g, depth - 1).negate(),
    }
}

fn gen_stmt(g: &mut Gen, depth: u32, callees: &[String]) -> Stmt {
    let choices = if depth == 0 { 5 } else { 9 };
    match g.below(choices) {
        0 => Stmt::Skip,
        1 => Stmt::assign(gen_var(g), gen_expr(g, 2)),
        2 => Stmt::Havoc(chora_expr::Symbol::new(gen_var(g))),
        3 => Stmt::Assume(gen_cond(g, 1)),
        4 => Stmt::Assert(gen_cond(g, 1), format!("l{}", g.below(100))),
        5 => Stmt::if_else(
            gen_cond(g, 1),
            gen_stmt(g, depth - 1, callees),
            gen_stmt(g, depth - 1, callees),
        ),
        6 => Stmt::while_loop(gen_cond(g, 1), gen_stmt(g, depth - 1, callees)),
        7 if !callees.is_empty() => {
            let callee = &callees[g.below(callees.len() as u64) as usize];
            if g.below(2) == 0 {
                Stmt::call(callee, vec![gen_expr(g, 1)])
            } else {
                Stmt::call_assign(gen_var(g), callee, vec![gen_expr(g, 1)])
            }
        }
        _ => Stmt::seq(
            (0..1 + g.below(3))
                .map(|_| gen_stmt(g, depth.saturating_sub(1), callees))
                .collect(),
        ),
    }
}

/// A random program: a layered DAG of procedures (each may call any earlier
/// one) plus random bodies over a fixed variable pool.
fn gen_program(seed: u64) -> Program {
    let mut g = Gen::new(seed);
    let mut prog = Program::new();
    prog.add_global("cost");
    let count = 2 + g.below(5);
    let mut names: Vec<String> = Vec::new();
    for i in 0..count {
        let name = format!("p{i}");
        // Call targets: a random subset of the already-defined procedures
        // (keeps the call graph acyclic, so the dirty cone is exactly the
        // set of transitive callers).
        let callees: Vec<String> = names.iter().filter(|_| g.below(2) == 0).cloned().collect();
        let mut body = vec![gen_stmt(&mut g, 2, &callees)];
        for callee in &callees {
            body.push(Stmt::call(callee, vec![gen_expr(&mut g, 1)]));
        }
        if g.below(2) == 0 {
            body.push(Stmt::Return(Some(gen_expr(&mut g, 1))));
        }
        prog.add_procedure(Procedure::new(&name, &["n"], &[], Stmt::seq(body)));
        names.push(name);
    }
    prog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// print → parse is fingerprint-preserving on parser-canonical programs
    /// (one normalization step reaches the canonical form, exactly like the
    /// CLI sees after reading a file).
    #[test]
    fn fingerprint_survives_print_parse_round_trip(seed in any::<u64>()) {
        let generated = gen_program(seed);
        let printed = print_program(&generated);
        let canonical = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program must reparse: {e}\n{printed}"));
        let reprinted = print_program(&canonical);
        let round_tripped = parse_program(&reprinted)
            .unwrap_or_else(|e| panic!("re-printed program must reparse: {e}\n{reprinted}"));
        for proc in &canonical.procedures {
            let again = round_tripped
                .procedure(&proc.name)
                .expect("procedure survives round trip");
            prop_assert_eq!(
                procedure_fingerprint(proc),
                procedure_fingerprint(again),
                "fingerprint of `{}` changed across print→parse",
                proc.name
            );
        }
        // The transitive keys agree as well (same call graph, same bodies).
        let salt = Fingerprint(7);
        prop_assert_eq!(
            procedure_keys(&canonical, salt),
            procedure_keys(&round_tripped, salt)
        );
    }

    /// Renaming fresh temporaries (order-preserving) never changes the
    /// fingerprint; permuting their first-occurrence order does.
    #[test]
    fn fingerprint_is_alpha_invariant_in_fresh_symbols(seed in any::<u64>(), scope_a in 0u32..100, scope_b in 100u32..200) {
        let mut g = Gen::new(seed);
        let src_a = chora_expr::FreshSource::new(scope_a);
        let src_b = chora_expr::FreshSource::new(scope_b);
        // Skip a random number of serials in b so the serial offsets differ.
        for _ in 0..g.below(5) {
            let _ = src_b.fresh();
        }
        let temps_a: Vec<_> = (0..3).map(|_| src_a.fresh()).collect();
        let temps_b: Vec<_> = (0..3).map(|_| src_b.fresh()).collect();
        let body = |t: &[chora_expr::Symbol]| {
            Stmt::seq(vec![
                Stmt::Assign(t[0], Expr::var("n")),
                Stmt::Assign(t[1], Expr::Var(t[0]).mul(Expr::int(2))),
                Stmt::If(
                    Cond::ge(Expr::Var(t[1]), Expr::int(0)),
                    Box::new(Stmt::Assign(t[2], Expr::Var(t[1]))),
                    Box::new(Stmt::Havoc(t[2])),
                ),
            ])
        };
        let make = |t: &[chora_expr::Symbol]| Procedure {
            name: "p".to_string(),
            params: vec![chora_expr::Symbol::new("n")],
            locals: vec![],
            body: body(t),
        };
        prop_assert_eq!(
            procedure_fingerprint(&make(&temps_a)),
            procedure_fingerprint(&make(&temps_b))
        );
        // Swapping the roles of the first two temporaries changes the
        // de-Bruijn structure only if their occurrence pattern changes; a
        // procedure using them in a genuinely different order must differ.
        let swapped = Procedure {
            name: "p".to_string(),
            params: vec![chora_expr::Symbol::new("n")],
            locals: vec![],
            body: Stmt::seq(vec![
                Stmt::Assign(temps_a[1], Expr::var("n")),
                Stmt::Assign(temps_a[0], Expr::Var(temps_a[0]).mul(Expr::int(2))),
                Stmt::If(
                    Cond::ge(Expr::Var(temps_a[1]), Expr::int(0)),
                    Box::new(Stmt::Assign(temps_a[2], Expr::Var(temps_a[1]))),
                    Box::new(Stmt::Havoc(temps_a[2])),
                ),
            ]),
        };
        prop_assert_ne!(
            procedure_fingerprint(&make(&temps_a)),
            procedure_fingerprint(&swapped)
        );
    }

    /// Component keys are independent of where a component sits in the
    /// program: prepending an unrelated procedure (which used to shift
    /// every later component's fresh-symbol scope and thereby its key)
    /// leaves every preexisting key untouched.
    #[test]
    fn prepending_an_unrelated_procedure_preserves_all_keys(seed in any::<u64>()) {
        let mut g = Gen::new(seed.wrapping_add(17));
        let program = gen_program(seed);
        let mut padded = Program::new();
        for global in &program.globals {
            padded.add_global(&global.to_string());
        }
        padded.add_procedure(Procedure::new(
            "zz_unrelated",
            &["n"],
            &[],
            gen_stmt(&mut g, 2, &[]),
        ));
        for proc in &program.procedures {
            padded.add_procedure(proc.clone());
        }
        let salt = Fingerprint(11);
        let before = procedure_keys(&program, salt);
        let after = procedure_keys(&padded, salt);
        for proc in &program.procedures {
            prop_assert_eq!(
                before[&proc.name], after[&proc.name],
                "`{}` changed key although only an unrelated procedure was prepended",
                proc.name
            );
        }
        prop_assert!(after.contains_key("zz_unrelated"));
    }

    /// Editing one procedure dirties exactly that procedure and its
    /// transitive callers.
    #[test]
    fn single_edit_dirties_exactly_the_caller_cone(seed in any::<u64>()) {
        let mut g = Gen::new(seed.wrapping_add(1));
        let program = gen_program(seed);
        let victim_index = g.below(program.procedures.len() as u64) as usize;
        let victim = program.procedures[victim_index].name.clone();
        // The edit: append one extra statement to the victim's body.
        let mut edited = program.clone();
        let proc = &mut edited.procedures[victim_index];
        proc.body = Stmt::seq(vec![
            proc.body.clone(),
            Stmt::assign("t", Expr::var("t").add(Expr::int(941))),
        ]);
        let salt = Fingerprint(3);
        let before = procedure_keys(&program, salt);
        let after = procedure_keys(&edited, salt);
        let callgraph = CallGraph::build(&program);
        for proc in &program.procedures {
            let dirty = proc.name == victim
                || callgraph.calls_transitively(&proc.name, &victim);
            if dirty {
                prop_assert_ne!(
                    before[&proc.name], after[&proc.name],
                    "`{}` is in the dirty cone of `{}` but kept its key",
                    proc.name, victim
                );
            } else {
                prop_assert_eq!(
                    before[&proc.name], after[&proc.name],
                    "`{}` is outside the dirty cone of `{}` but changed key",
                    proc.name, victim
                );
            }
        }
    }
}
