//! End-to-end CLI tests: file in, analysis verdict out.

use chora_cli::{analyze, bench, complexity_cmd, print_cmd, BenchOptions, FileOptions};
use std::path::PathBuf;

fn example(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/programs")
        .join(name)
        .display()
        .to_string()
}

/// Drops the wall-clock field so reproducibility checks compare only the
/// analysis content.
fn strip_timing(out: String) -> String {
    out.lines()
        .filter(|l| !l.contains("analysis_ms"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn file_opts(name: &str, json: bool) -> FileOptions {
    FileOptions {
        path: example(name),
        json,
        ..FileOptions::default()
    }
}

#[test]
fn complexity_hanoi_reports_exponential_in_json() {
    let (output, exit) = complexity_cmd(&file_opts("hanoi.imp", true)).expect("analysis runs");
    assert_eq!(exit, 0, "output: {output}");
    assert!(
        output.contains("\"class\": \"O(2^n)\""),
        "expected the O(2^n) verdict in JSON output, got:\n{output}"
    );
    assert!(
        output.contains("\"procedure\": \"hanoi\""),
        "got:\n{output}"
    );
    assert!(output.contains("\"bound\": "), "got:\n{output}");
}

#[test]
fn analyze_hanoi_emits_recursive_summary_json() {
    let (output, exit) = analyze(&file_opts("hanoi.imp", true)).expect("analysis runs");
    assert_eq!(exit, 0, "output: {output}");
    assert!(output.contains("\"name\": \"hanoi\""), "got:\n{output}");
    assert!(output.contains("\"recursive\": true"), "got:\n{output}");
    assert!(output.contains("\"depth_bound\": "), "got:\n{output}");
}

#[test]
fn complexity_merge_sort_reports_n_log_n() {
    let (output, exit) =
        complexity_cmd(&file_opts("merge-sort.imp", false)).expect("analysis runs");
    assert_eq!(exit, 0, "output: {output}");
    assert!(output.contains("O(n log n)"), "got:\n{output}");
}

#[test]
fn analyze_height_proves_the_assertion() {
    let (output, exit) = analyze(&file_opts("height.imp", true)).expect("analysis runs");
    assert_eq!(exit, 0, "unverified assertions, output:\n{output}");
    assert!(
        output.contains("\"all_assertions_verified\": true"),
        "got:\n{output}"
    );
}

#[test]
fn bench_filter_runs_single_benchmark() {
    let (output, exit) = bench(&BenchOptions {
        json: true,
        filter: Some("hanoi".to_string()),
        ..BenchOptions::default()
    })
    .expect("bench runs");
    assert_eq!(exit, 0);
    assert!(output.contains("\"name\": \"hanoi\""), "got:\n{output}");
    assert!(output.contains("\"class\": \"O(2^n)\""), "got:\n{output}");
    // The filter is case-sensitive: the recHanoi assertion benchmarks stay out.
    assert!(!output.contains("recHanoi01"), "got:\n{output}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let err = analyze(&file_opts("no-such-file.imp", false)).unwrap_err();
    assert!(err.to_string().contains("cannot read"), "got: {err}");
}

#[test]
fn analyze_json_is_byte_identical_across_runs() {
    // The per-analysis FreshSource (and the structural symbol encoding) make
    // repeated analyses of the same file reproducible down to the byte; only
    // the timing field varies, so it is stripped before comparing.
    let (first, _) = analyze(&file_opts("merge-sort.imp", true)).expect("analysis runs");
    let (second, _) = analyze(&file_opts("merge-sort.imp", true)).expect("analysis runs");
    assert_eq!(
        strip_timing(first),
        strip_timing(second),
        "repeated runs must be byte-identical"
    );
}

#[test]
fn analyze_output_is_independent_of_jobs_and_matches_the_golden() {
    // The ready-queue scheduler hands components to however many workers are
    // asked for, but the canonical task order is folded sequentially, so the
    // document must be byte-identical for every worker count — and identical
    // to the golden recorded before the scheduler existed.  The golden
    // records the repo-relative path, so that one line is normalized.
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens/merge-sort.analyze.json");
    let golden = std::fs::read_to_string(&golden_path).expect("read golden");
    let absolute = example("merge-sort.imp");
    for jobs in [1usize, 2, 8] {
        let opts = FileOptions {
            jobs,
            ..file_opts("merge-sort.imp", true)
        };
        let (out, exit) = analyze(&opts).expect("analysis runs");
        assert_eq!(exit, 0, "jobs={jobs} output: {out}");
        let normalized = out.replace(&absolute, "examples/programs/merge-sort.imp");
        assert_eq!(
            strip_timing(normalized),
            strip_timing(golden.clone()),
            "--jobs {jobs} must reproduce the golden document byte-for-byte"
        );
    }
}

#[test]
fn trace_out_records_every_phase_without_perturbing_output() {
    // One test covers the whole tracing contract (the recording session is
    // process-global, so splitting it across parallel #[test]s would race):
    // the Chrome trace has at least one span per analysis phase and at least
    // one scheduler lane, and stdout stays byte-identical with tracing on
    // and off for both a serial and a parallel run.
    let dir = std::env::temp_dir().join("chora-trace-e2e-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    for jobs in [1usize, 8] {
        let trace_path = dir.join(format!("hanoi-jobs{jobs}.trace.json"));
        let plain = FileOptions {
            jobs,
            quiet: true,
            ..file_opts("hanoi.imp", true)
        };
        let traced = FileOptions {
            trace_out: Some(trace_path.display().to_string()),
            ..plain.clone()
        };
        let (untraced_out, _) = analyze(&plain).expect("analysis runs");
        let (traced_out, _) = analyze(&traced).expect("traced analysis runs");
        assert_eq!(
            strip_timing(untraced_out),
            strip_timing(traced_out),
            "--trace-out must not perturb the analysis document (jobs={jobs})"
        );

        let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
        assert!(
            trace.starts_with('{') && trace.contains("\"traceEvents\""),
            "expected Chrome trace-event JSON, got:\n{trace}"
        );
        for phase in ["parse", "summarize", "height", "depth", "check"] {
            assert!(
                trace.contains(&format!("\"name\":\"{phase}\"")),
                "jobs={jobs}: expected a `{phase}` span in the trace"
            );
        }
        assert!(
            trace.contains("\"fm_project"),
            "jobs={jobs}: expected FM projection spans"
        );
        assert!(
            trace.contains("recurrence_solve"),
            "jobs={jobs}: expected a recurrence-solver span"
        );
        assert!(
            trace.contains("\"thread_name\""),
            "jobs={jobs}: expected at least one lane metadata event"
        );
    }
}

#[test]
fn bench_times_programs_directory() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/programs")
        .display()
        .to_string();
    let (output, exit) = bench(&BenchOptions {
        json: true,
        filter: Some("hanoi".to_string()),
        jobs: 2,
        programs_dir: Some(dir),
        ..BenchOptions::default()
    })
    .expect("bench runs");
    assert_eq!(exit, 0);
    assert!(output.contains("\"programs\""), "got:\n{output}");
    assert!(output.contains("\"procedures\": 1"), "got:\n{output}");
}

#[test]
fn parse_errors_carry_position_and_caret() {
    let dir = std::env::temp_dir().join("chora-parse-error-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bad.imp");
    std::fs::write(&path, "proc main(n) {\n  x := ;\n}\n").expect("write temp program");
    let err = print_cmd(&path.display().to_string()).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("2:8"), "expected line:col, got: {message}");
    assert!(
        message.contains("x := ;"),
        "expected source line in error, got: {message}"
    );
    assert!(message.contains('^'), "expected caret, got: {message}");
}
