//! End-to-end CLI tests: file in, analysis verdict out.

use chora_cli::{analyze, bench, complexity_cmd, BenchOptions, FileOptions};
use std::path::PathBuf;

fn example(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/programs")
        .join(name)
        .display()
        .to_string()
}

fn file_opts(name: &str, json: bool) -> FileOptions {
    FileOptions {
        path: example(name),
        json,
        ..FileOptions::default()
    }
}

#[test]
fn complexity_hanoi_reports_exponential_in_json() {
    let (output, exit) = complexity_cmd(&file_opts("hanoi.imp", true)).expect("analysis runs");
    assert_eq!(exit, 0, "output: {output}");
    assert!(
        output.contains("\"class\": \"O(2^n)\""),
        "expected the O(2^n) verdict in JSON output, got:\n{output}"
    );
    assert!(
        output.contains("\"procedure\": \"hanoi\""),
        "got:\n{output}"
    );
    assert!(output.contains("\"bound\": "), "got:\n{output}");
}

#[test]
fn analyze_hanoi_emits_recursive_summary_json() {
    let (output, exit) = analyze(&file_opts("hanoi.imp", true)).expect("analysis runs");
    assert_eq!(exit, 0, "output: {output}");
    assert!(output.contains("\"name\": \"hanoi\""), "got:\n{output}");
    assert!(output.contains("\"recursive\": true"), "got:\n{output}");
    assert!(output.contains("\"depth_bound\": "), "got:\n{output}");
}

#[test]
fn complexity_merge_sort_reports_n_log_n() {
    let (output, exit) =
        complexity_cmd(&file_opts("merge-sort.imp", false)).expect("analysis runs");
    assert_eq!(exit, 0, "output: {output}");
    assert!(output.contains("O(n log n)"), "got:\n{output}");
}

#[test]
fn analyze_height_proves_the_assertion() {
    let (output, exit) = analyze(&file_opts("height.imp", true)).expect("analysis runs");
    assert_eq!(exit, 0, "unverified assertions, output:\n{output}");
    assert!(
        output.contains("\"all_assertions_verified\": true"),
        "got:\n{output}"
    );
}

#[test]
fn bench_filter_runs_single_benchmark() {
    let (output, exit) = bench(&BenchOptions {
        json: true,
        filter: Some("hanoi".to_string()),
    })
    .expect("bench runs");
    assert_eq!(exit, 0);
    assert!(output.contains("\"name\": \"hanoi\""), "got:\n{output}");
    assert!(output.contains("\"class\": \"O(2^n)\""), "got:\n{output}");
    // The filter is case-sensitive: the recHanoi assertion benchmarks stay out.
    assert!(!output.contains("recHanoi01"), "got:\n{output}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let err = analyze(&file_opts("no-such-file.imp", false)).unwrap_err();
    assert!(err.to_string().contains("cannot read"), "got: {err}");
}
