//! Fleet-mode end-to-end tests: real daemons on ephemeral ports wired
//! together with `--remote-cache`, exercising the remote L3 summary tier
//! over actual HTTP — warm-peer hits, failure semantics when the peer is
//! unreachable, and the cross-program dedup counter.
//!
//! The exactness bar throughout: stdout/response bytes are identical with
//! the fleet tier on, off, cold, or warm (timing lines stripped).

use chora_cli::{spawn_server, AnalysisService, ServeOptions};
use chora_server::client::Client;
use chora_server::http::encode_query_component;
use std::path::PathBuf;
use std::sync::Arc;

fn example(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/programs")
        .join(name)
        .display()
        .to_string()
}

fn daemon(opts: ServeOptions) -> (chora_server::ServerHandle, Arc<AnalysisService>) {
    spawn_server(&ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        quiet: true,
        ..opts
    })
    .expect("spawn daemon")
}

/// A daemon using `peer` as its remote fleet cache (memory L1 + remote L3,
/// no disk, so every summary the peer holds must come over the wire).
fn fleet_daemon(peer: &str) -> (chora_server::ServerHandle, Arc<AnalysisService>) {
    daemon(ServeOptions {
        remote_cache: Some(peer.to_string()),
        ..ServeOptions::default()
    })
}

fn post_source(addr: &str, file: &str, source: &str) -> (u16, String) {
    let path = format!("/v1/analyze?file={}", encode_query_component(file));
    Client::new(addr)
        .send("POST", &path, Some(source))
        .expect("request")
}

fn strip_timing(out: &str) -> String {
    out.lines()
        .filter(|l| !l.contains("analysis_ms"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Pulls one integer counter out of a daemon's `/v1/stats` JSON.
fn stat(addr: &str, name: &str) -> u64 {
    let (status, body) = Client::new(addr)
        .send("GET", "/v1/stats", None)
        .expect("stats");
    assert_eq!(status, 200, "{body}");
    let needle = format!("\"{name}\": ");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no {name} in:\n{body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter value")
}

#[test]
fn a_warm_peer_answers_every_summary_as_a_remote_hit_byte_identically() {
    let source = std::fs::read_to_string(example("merge-sort.imp")).expect("read example");
    let file = "merge-sort.imp";

    // The reference: a solo daemon with no fleet tier, run cold.
    let (solo_handle, _solo) = daemon(ServeOptions::default());
    let (status, reference) = post_source(&solo_handle.addr().to_string(), file, &source);
    assert_eq!(status, 200, "{reference}");
    solo_handle.shutdown();

    // Daemon A analyzes the program once, filling its local store.
    let (a_handle, a_service) = daemon(ServeOptions::default());
    let a_addr = a_handle.addr().to_string();
    let (status, from_a) = post_source(&a_addr, file, &source);
    assert_eq!(status, 200, "{from_a}");
    assert!(a_service.store().counters().stores > 0, "A stored nothing");

    // Daemon B, cold, with A as its remote cache: every summary probe
    // misses B's empty memory tier and lands on A — 100% L3 warm hits,
    // zero full recomputations below the entry points.
    let (b_handle, b_service) = fleet_daemon(&a_addr);
    let (status, from_b) = post_source(&b_handle.addr().to_string(), file, &source);
    assert_eq!(status, 200, "{from_b}");

    let remote = b_service.store().remote().expect("B has a remote tier");
    assert_eq!(
        b_service.store().counters().misses,
        0,
        "a fully warm peer must leave no store miss"
    );
    assert!(remote.hits() >= 1, "no remote hits recorded");
    assert_eq!(remote.misses(), 0, "the peer had every key");
    assert_eq!(remote.errors(), 0, "clean transport expected");
    // A's serving side agrees: it answered B's fetches from its store.
    assert!(stat(&a_addr, "summary_gets") >= remote.hits());
    assert_eq!(
        stat(&a_addr, "summary_gets"),
        stat(&a_addr, "summary_get_hits")
    );

    // The exactness bar: all three documents agree byte-for-byte.
    assert_eq!(strip_timing(&from_a), strip_timing(&reference));
    assert_eq!(
        strip_timing(&from_b),
        strip_timing(&reference),
        "fleet-warm output diverged from the solo cold run"
    );
    b_handle.shutdown();
    a_handle.shutdown();
}

#[test]
fn an_unreachable_remote_tier_degrades_to_local_analysis() {
    // Nothing listens on port 1; connects fail fast with ECONNREFUSED.
    let (handle, service) = fleet_daemon("127.0.0.1:1");
    let addr = handle.addr().to_string();
    let source = std::fs::read_to_string(example("fib.imp")).expect("read example");

    let (solo_handle, _solo) = daemon(ServeOptions::default());
    let (status, reference) = post_source(&solo_handle.addr().to_string(), "fib.imp", &source);
    assert_eq!(status, 200, "{reference}");
    solo_handle.shutdown();

    let (status, body) = post_source(&addr, "fib.imp", &source);
    assert_eq!(status, 200, "a dead peer must not fail the analysis");
    assert_eq!(
        strip_timing(&body),
        strip_timing(&reference),
        "output with a dead fleet tier diverged from the solo run"
    );
    let remote = service.store().remote().expect("remote tier configured");
    assert!(
        remote.errors() >= 1,
        "the first probe must record the transport failure"
    );

    // The failed target is now in cooldown: a second, re-analyzed request
    // (new bytes defeat the response cache) skips the tier instead of
    // paying the connect again — and still succeeds.
    let edited = format!("{source}\n// cooldown round\n");
    let (status, body) = post_source(&addr, "fib.imp", &edited);
    assert_eq!(status, 200, "{body}");
    assert_eq!(strip_timing(&body), strip_timing(&reference));
    assert!(
        remote.skipped() >= 1,
        "probes during cooldown must be skipped, not retried"
    );
    handle.shutdown();
}

#[test]
fn the_shared_cache_counts_hits_that_cross_source_programs() {
    // Program Y contains X's procedure verbatim plus an unrelated one, so
    // the two programs share cone keys but hash to different source tags.
    let x = std::fs::read_to_string(example("fib.imp")).expect("read example");
    let y = format!("{x}\nproc solo(m) {{\n    cost := cost + m;\n}}\n");

    let (a_handle, _a_service) = daemon(ServeOptions::default());
    let a_addr = a_handle.addr().to_string();

    // Daemon B publishes X's summaries into A (write-through on store).
    let (b_handle, _b_service) = fleet_daemon(&a_addr);
    let (status, body) = post_source(&b_handle.addr().to_string(), "x.imp", &x);
    assert_eq!(status, 200, "{body}");
    b_handle.shutdown();
    assert!(stat(&a_addr, "summary_puts") >= 1, "B published nothing");

    // Daemon C analyzes Y: the shared cone keys hit A's store under a
    // different source tag — cross-program dedup, counted on A.
    let (c_handle, c_service) = fleet_daemon(&a_addr);
    let (status, body) = post_source(&c_handle.addr().to_string(), "y.imp", &y);
    assert_eq!(status, 200, "{body}");
    assert!(
        c_service.store().remote().expect("remote tier").hits() >= 1,
        "Y must reuse X's published summaries"
    );
    assert!(
        stat(&a_addr, "remote_cross_program_hits") >= 1,
        "a hit under a different source tag must count as cross-program"
    );
    c_handle.shutdown();
    a_handle.shutdown();
}
